package rl

import (
	"math"
	"math/rand"
	"testing"

	"vtmig/internal/mathx"
)

func TestGaussianLogProbMatchesDensity(t *testing.T) {
	tests := []struct {
		name                string
		action, mean, logSd []float64
	}{
		{"standard", []float64{0}, []float64{0}, []float64{0}},
		{"shifted", []float64{1.5}, []float64{0.5}, []float64{0}},
		{"scaled", []float64{2}, []float64{1}, []float64{math.Log(2)}},
		{"multidim", []float64{0.1, -0.4}, []float64{0, 0}, []float64{0.2, -0.3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var want float64
			for i := range tt.mean {
				sd := math.Exp(tt.logSd[i])
				z := (tt.action[i] - tt.mean[i]) / sd
				want += math.Log(math.Exp(-0.5*z*z) / (sd * math.Sqrt(2*math.Pi)))
			}
			got := gaussianLogProb(tt.action, tt.mean, tt.logSd)
			if !mathx.AlmostEqual(got, want, 1e-9) {
				t.Errorf("logProb = %v, want %v", got, want)
			}
		})
	}
}

func TestGaussianLogProbGradsNumeric(t *testing.T) {
	action := []float64{0.8, -1.2}
	mean := []float64{0.3, 0.1}
	logStd := []float64{-0.2, 0.4}
	dMean := make([]float64, 2)
	dLogStd := make([]float64, 2)
	gaussianLogProbGrads(action, mean, logStd, dMean, dLogStd)

	const h = 1e-6
	for i := range mean {
		mp := append([]float64(nil), mean...)
		mp[i] += h
		mm := append([]float64(nil), mean...)
		mm[i] -= h
		numeric := (gaussianLogProb(action, mp, logStd) - gaussianLogProb(action, mm, logStd)) / (2 * h)
		if !mathx.AlmostEqual(dMean[i], numeric, 1e-5) {
			t.Errorf("dMean[%d] = %v, numeric %v", i, dMean[i], numeric)
		}
		lp := append([]float64(nil), logStd...)
		lp[i] += h
		lm := append([]float64(nil), logStd...)
		lm[i] -= h
		numeric = (gaussianLogProb(action, mean, lp) - gaussianLogProb(action, mean, lm)) / (2 * h)
		if !mathx.AlmostEqual(dLogStd[i], numeric, 1e-5) {
			t.Errorf("dLogStd[%d] = %v, numeric %v", i, dLogStd[i], numeric)
		}
	}
}

func TestGaussianEntropy(t *testing.T) {
	// Entropy of N(., 1) is 0.5*log(2πe) ≈ 1.4189.
	got := gaussianEntropy([]float64{0})
	want := 0.5 * math.Log(2*math.Pi*math.E)
	if !mathx.AlmostEqual(got, want, 1e-9) {
		t.Errorf("entropy = %v, want %v", got, want)
	}
	// Doubling sigma adds log 2.
	got2 := gaussianEntropy([]float64{math.Log(2)})
	if !mathx.AlmostEqual(got2-got, math.Log(2), 1e-9) {
		t.Errorf("entropy difference = %v, want log 2", got2-got)
	}
}

func TestGaussianSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mean := []float64{2}
	logStd := []float64{math.Log(0.5)}
	var rs mathx.RunningStat
	buf := make([]float64, 1)
	for i := 0; i < 20000; i++ {
		gaussianSample(rng, mean, logStd, buf)
		rs.Add(buf[0])
	}
	if !mathx.AlmostEqual(rs.Mean(), 2, 0.02) {
		t.Errorf("sample mean = %v, want ~2", rs.Mean())
	}
	if !mathx.AlmostEqual(rs.StdDev(), 0.5, 0.02) {
		t.Errorf("sample std = %v, want ~0.5", rs.StdDev())
	}
}

func TestActorCriticShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ac := NewActorCritic(6, 2, []int{8, 8}, 2 /*tanh*/, -0.5, rng)
	mean, logStd, _ := ac.Forward(make([]float64, 6))
	if len(mean) != 2 || len(logStd) != 2 {
		t.Fatalf("head widths = %d/%d, want 2/2", len(mean), len(logStd))
	}
	if logStd[0] != -0.5 {
		t.Errorf("initial logStd = %v, want -0.5", logStd[0])
	}
	// trunk(2 layers × 2 params) + 2 heads × 2 params + logstd = 9.
	if got := len(ac.Params()); got != 9 {
		t.Errorf("param count = %d, want 9", got)
	}
}

func TestActorCriticValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"bad obs", func() { NewActorCritic(0, 1, []int{4}, 2, 0, rng) }},
		{"bad act", func() { NewActorCritic(1, 0, []int{4}, 2, 0, rng) }},
		{"no hidden", func() { NewActorCritic(1, 1, nil, 2, 0, rng) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.f()
		})
	}
}

// TestActorCriticGradCheck verifies the shared-trunk backward pass against
// finite differences for the scalar loss L = cm·mean + cv·value + cs·logstd.
func TestActorCriticGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ac := NewActorCritic(4, 1, []int{6, 5}, 2 /*tanh*/, -0.3, rng)
	obs := []float64{0.2, -0.7, 1.1, 0.4}
	const cm, cv, cs = 0.9, -1.4, 0.6

	loss := func() float64 {
		mean, logStd, value := ac.Forward(obs)
		return cm*mean[0] + cv*value + cs*logStd[0]
	}

	for _, p := range ac.Params() {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
	ac.Forward(obs)
	ac.Backward([]float64{cm}, []float64{cs}, cv)

	const h = 1e-6
	for _, p := range ac.Params() {
		for i := range p.Value {
			orig := p.Value[i]
			p.Value[i] = orig + h
			up := loss()
			p.Value[i] = orig - h
			down := loss()
			p.Value[i] = orig
			numeric := (up - down) / (2 * h)
			if !mathx.AlmostEqual(p.Grad[i], numeric, 1e-4) {
				t.Fatalf("grad check failed at %s[%d]: analytic %v, numeric %v", p.Name, i, p.Grad[i], numeric)
			}
		}
	}
}

func TestRolloutGAEHandComputed(t *testing.T) {
	// Two steps, gamma=0.5, lambda=0.5, bootstrap V=2.
	// Step 1: r=1, V=0.5; step 2: r=2, V=1 (not terminal).
	buf := NewRollout(2)
	buf.Add([]float64{0}, []float64{0}, 0, 1, 0.5, false)
	buf.Add([]float64{0}, []float64{0}, 0, 2, 1, false)
	buf.ComputeGAE(0.5, 0.5, 2)
	s := buf.Steps()
	// delta2 = 2 + 0.5*2 - 1 = 2 ; A2 = 2
	// delta1 = 1 + 0.5*1 - 0.5 = 1 ; A1 = 1 + 0.25*2 = 1.5
	if !mathx.AlmostEqual(s[1].Advantage, 2, 1e-12) {
		t.Errorf("A2 = %v, want 2", s[1].Advantage)
	}
	if !mathx.AlmostEqual(s[0].Advantage, 1.5, 1e-12) {
		t.Errorf("A1 = %v, want 1.5", s[0].Advantage)
	}
	if !mathx.AlmostEqual(s[0].Return, 2.0, 1e-12) {
		t.Errorf("Return1 = %v, want 2.0", s[0].Return)
	}
}

func TestRolloutGAETerminalCutsBootstrap(t *testing.T) {
	buf := NewRollout(1)
	buf.Add([]float64{0}, []float64{0}, 0, 3, 1, true)
	buf.ComputeGAE(0.9, 0.95, 100) // bootstrap must be ignored after done
	if got := buf.Steps()[0].Advantage; !mathx.AlmostEqual(got, 2, 1e-12) {
		t.Errorf("terminal advantage = %v, want 3-1=2", got)
	}
}

func TestRolloutSegmentedGAE(t *testing.T) {
	// Two ComputeGAE calls must cover disjoint segments and leave the
	// first segment untouched by the second call.
	buf := NewRollout(4)
	buf.Add([]float64{0}, []float64{0}, 0, 1, 0, false)
	buf.ComputeGAE(1, 1, 0)
	firstAdv := buf.Steps()[0].Advantage
	buf.Add([]float64{0}, []float64{0}, 0, 5, 0, false)
	buf.ComputeGAE(1, 1, 0)
	if buf.Steps()[0].Advantage != firstAdv {
		t.Error("second ComputeGAE modified the first segment")
	}
	if got := buf.Steps()[1].Advantage; !mathx.AlmostEqual(got, 5, 1e-12) {
		t.Errorf("second segment advantage = %v, want 5", got)
	}
}

func TestRolloutNormalizeAdvantages(t *testing.T) {
	buf := NewRollout(3)
	for _, r := range []float64{1, 2, 3} {
		buf.Add([]float64{0}, []float64{0}, 0, r, 0, false)
	}
	buf.ComputeGAE(0, 0, 0) // advantages = rewards
	buf.NormalizeAdvantages()
	var advs []float64
	for _, s := range buf.Steps() {
		advs = append(advs, s.Advantage)
	}
	if !mathx.AlmostEqual(mathx.Mean(advs), 0, 1e-12) {
		t.Errorf("normalized mean = %v, want 0", mathx.Mean(advs))
	}
	if !mathx.AlmostEqual(mathx.StdDev(advs), 1, 1e-12) {
		t.Errorf("normalized std = %v, want 1", mathx.StdDev(advs))
	}
}

func TestRolloutResetClearsSegments(t *testing.T) {
	buf := NewRollout(1)
	buf.Add([]float64{0}, []float64{0}, 0, 1, 0, false)
	buf.ComputeGAE(1, 1, 0)
	buf.Reset()
	if buf.Len() != 0 {
		t.Fatalf("Len after Reset = %d", buf.Len())
	}
	buf.Add([]float64{0}, []float64{0}, 0, 7, 0, false)
	buf.ComputeGAE(1, 1, 0)
	if got := buf.Steps()[0].Advantage; !mathx.AlmostEqual(got, 7, 1e-12) {
		t.Errorf("advantage after Reset = %v, want 7", got)
	}
}

func TestRolloutGAEValidation(t *testing.T) {
	buf := NewRollout(1)
	buf.Add([]float64{0}, []float64{0}, 0, 1, 0, false)
	defer func() {
		if recover() == nil {
			t.Fatal("ComputeGAE with gamma > 1 did not panic")
		}
	}()
	buf.ComputeGAE(1.5, 0.5, 0)
}

// banditEnv is a stateless continuous bandit: reward = 1 - (a - target)².
// PPO must move the policy mean toward target.
type banditEnv struct {
	target float64
	k, len int
}

func (b *banditEnv) Reset() []float64 { b.k = 0; return []float64{1} }
func (b *banditEnv) Step(a []float64) ([]float64, float64, bool) {
	b.k++
	d := a[0] - b.target
	return []float64{1}, 1 - d*d, b.k >= b.len
}
func (b *banditEnv) ObsDim() int { return 1 }
func (b *banditEnv) ActDim() int { return 1 }
func (b *banditEnv) ActionBounds() (lo, hi []float64) {
	return []float64{-2}, []float64{2}
}

func TestPPOLearnsBandit(t *testing.T) {
	env := &banditEnv{target: 0.7, len: 50}
	cfg := DefaultPPOConfig()
	cfg.LR = 3e-3
	cfg.Seed = 5
	agent := NewPPO(1, 1, []float64{-2}, []float64{2}, cfg)
	tr := NewTrainer(env, agent, TrainerConfig{Episodes: 60, RoundsPerEpisode: 50, UpdateEvery: 25})
	stats := tr.Run()

	if len(stats) != 60 {
		t.Fatalf("episodes = %d, want 60", len(stats))
	}
	act := agent.MeanAction([]float64{1})
	if math.Abs(act[0]-0.7) > 0.25 {
		t.Errorf("learned mean action = %v, want ~0.7", act[0])
	}
	// Learning curve should improve from start to end.
	early := mathx.Mean([]float64{stats[0].Return, stats[1].Return, stats[2].Return})
	late := mathx.Mean([]float64{stats[57].Return, stats[58].Return, stats[59].Return})
	if late <= early {
		t.Errorf("no improvement: early %v, late %v", early, late)
	}
}

func TestPPOActionClampedToBounds(t *testing.T) {
	cfg := DefaultPPOConfig()
	cfg.InitLogStd = 2 // huge exploration to force clamping
	agent := NewPPO(1, 1, []float64{0}, []float64{1}, cfg)
	for i := 0; i < 100; i++ {
		_, env, _, _ := agent.SelectAction([]float64{0.5})
		if env[0] < 0 || env[0] > 1 {
			t.Fatalf("env action %v outside [0,1]", env[0])
		}
	}
}

func TestPPOUpdateEmptyBufferIsNoop(t *testing.T) {
	agent := NewPPO(1, 1, []float64{0}, []float64{1}, DefaultPPOConfig())
	stats := agent.Update(NewRollout(0))
	if stats.Samples != 0 {
		t.Errorf("empty update processed %d samples", stats.Samples)
	}
}

func TestPPOValidation(t *testing.T) {
	cfg := DefaultPPOConfig()
	for _, tc := range []struct {
		name string
		mut  func(*PPOConfig)
	}{
		{"zero epochs", func(c *PPOConfig) { c.Epochs = 0 }},
		{"zero minibatch", func(c *PPOConfig) { c.MiniBatch = 0 }},
		{"clip too big", func(c *PPOConfig) { c.ClipEps = 1 }},
		{"zero lr", func(c *PPOConfig) { c.LR = 0 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := cfg
			tc.mut(&c)
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			NewPPO(1, 1, []float64{0}, []float64{1}, c)
		})
	}
}

func TestPPOInvertedBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inverted action bounds did not panic")
		}
	}()
	NewPPO(1, 1, []float64{1}, []float64{0}, DefaultPPOConfig())
}

func TestPPOLogStdFloor(t *testing.T) {
	cfg := DefaultPPOConfig()
	cfg.MinLogStd = -1
	cfg.InitLogStd = -0.5
	agent := NewPPO(1, 1, []float64{0}, []float64{1}, cfg)
	// Force the logstd far below the floor and verify clamping on update.
	agent.net.logStd.Value[0] = -10
	buf := NewRollout(4)
	for i := 0; i < 4; i++ {
		buf.Add([]float64{1}, []float64{0.5}, -1, 1, 0, false)
	}
	buf.ComputeGAE(0.9, 0.9, 0)
	agent.Update(buf)
	if got := agent.net.logStd.Value[0]; got < -1 {
		t.Errorf("logStd = %v, want >= -1 after clamping", got)
	}
}

func TestTrainerEarlyStopCallback(t *testing.T) {
	env := &banditEnv{target: 0, len: 10}
	agent := NewPPO(1, 1, []float64{-2}, []float64{2}, DefaultPPOConfig())
	tr := NewTrainer(env, agent, TrainerConfig{Episodes: 100, RoundsPerEpisode: 10, UpdateEvery: 5})
	count := 0
	tr.OnEpisode = func(EpisodeStats) bool {
		count++
		return count < 3
	}
	stats := tr.Run()
	if len(stats) != 3 {
		t.Errorf("early stop produced %d episodes, want 3", len(stats))
	}
}

func TestTrainerConfigValidation(t *testing.T) {
	env := &banditEnv{target: 0, len: 10}
	agent := NewPPO(1, 1, []float64{-2}, []float64{2}, DefaultPPOConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("invalid TrainerConfig did not panic")
		}
	}()
	NewTrainer(env, agent, TrainerConfig{Episodes: 0, RoundsPerEpisode: 1, UpdateEvery: 1})
}

func TestSelectActionDeterministicSeed(t *testing.T) {
	mk := func() *PPO {
		cfg := DefaultPPOConfig()
		cfg.Seed = 77
		return NewPPO(2, 1, []float64{0}, []float64{1}, cfg)
	}
	a1, a2 := mk(), mk()
	obs := []float64{0.3, 0.7}
	r1, e1, l1, v1 := a1.SelectAction(obs)
	r2, e2, l2, v2 := a2.SelectAction(obs)
	if r1[0] != r2[0] || e1[0] != e2[0] || l1 != l2 || v1 != v2 {
		t.Error("same seed must produce identical actions")
	}
}

func TestPPOFullEpochsModeLearns(t *testing.T) {
	env := &banditEnv{target: -0.4, len: 50}
	cfg := DefaultPPOConfig()
	cfg.LR = 3e-3
	cfg.FullEpochs = true
	cfg.Seed = 11
	agent := NewPPO(1, 1, []float64{-2}, []float64{2}, cfg)
	tr := NewTrainer(env, agent, TrainerConfig{Episodes: 60, RoundsPerEpisode: 50, UpdateEvery: 25})
	tr.Run()
	act := agent.MeanAction([]float64{1})
	if math.Abs(act[0]-(-0.4)) > 0.3 {
		t.Errorf("full-epoch mode learned %v, want ~-0.4", act[0])
	}
}

func TestDenormalizeMapsBounds(t *testing.T) {
	agent := NewPPO(1, 1, []float64{5}, []float64{50}, DefaultPPOConfig())
	tests := []struct{ raw, want float64 }{
		{-1, 5}, {1, 50}, {0, 27.5}, {-3, 5}, {3, 50},
	}
	for _, tt := range tests {
		if got := agent.Denormalize([]float64{tt.raw})[0]; got != tt.want {
			t.Errorf("Denormalize(%v) = %v, want %v", tt.raw, got, tt.want)
		}
	}
}

func TestMeanActionInsideBounds(t *testing.T) {
	agent := NewPPO(3, 1, []float64{5}, []float64{50}, DefaultPPOConfig())
	for i := 0; i < 20; i++ {
		obs := []float64{float64(i), -float64(i), 0.5}
		a := agent.MeanAction(obs)[0]
		if a < 5 || a > 50 {
			t.Fatalf("mean action %v outside [5, 50]", a)
		}
	}
}
