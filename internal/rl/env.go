// Package rl implements the deep-reinforcement-learning substrate of the
// paper: a diagonal-Gaussian stochastic policy, a shared actor–critic
// network, Generalized Advantage Estimation, Proximal Policy Optimization
// with the clipped surrogate objective (Eqs. 14–19), and the episode-driven
// training loop of Algorithm 1.
//
// Everything is built on the Go standard library and the vtmig nn package;
// no external deep-learning framework is used.
package rl

import (
	"fmt"

	"vtmig/internal/nn"
)

// Env is a (possibly partially observable) environment with continuous
// observations and actions. The POMDP of the paper (internal/pomdp) is the
// canonical implementation.
type Env interface {
	// Reset starts a new episode and returns the initial observation.
	Reset() []float64
	// Step applies an action and returns the next observation, the scalar
	// reward, and whether the episode has terminated.
	Step(action []float64) (obs []float64, reward float64, done bool)
	// ObsDim is the length of observations returned by Reset and Step.
	ObsDim() int
	// ActDim is the length of actions expected by Step.
	ActDim() int
	// ActionBounds returns the per-dimension closed action interval
	// [lo[i], hi[i]] that Step accepts. Policies clamp sampled actions to
	// these bounds before stepping.
	ActionBounds() (lo, hi []float64)
}

// SnapshotEnv is an Env whose cross-episode state can be checkpointed at
// an episode boundary and restored into a freshly constructed,
// identically configured instance — the environment half of resume
// bit-identity (determinism contract rule 6). The paper's POMDP
// (pomdp.GameEnv) is the canonical implementation: its state is the RNG
// stream position plus the running-best utility behind the binary reward;
// everything else is rewritten by the next Reset.
type SnapshotEnv interface {
	Env
	// EnvSnapshot captures the environment's cross-episode state. Valid
	// only at an episode boundary (after the final Step of an episode or
	// before a Reset).
	EnvSnapshot() nn.EnvState
	// EnvRestore rewinds a fresh, identically configured instance to a
	// captured state. The next Reset then starts the episode the original
	// environment would have started.
	EnvRestore(st nn.EnvState) error
}

// VecEnv is a fixed set of independently seeded environment instances with
// identical observation/action spaces, stepped in lockstep by a
// VecCollector. Instances must not share mutable state: the collector
// steps different instances from different goroutines (each instance is
// only ever touched by one goroutine at a time).
type VecEnv interface {
	// NumEnvs returns the number of environment instances.
	NumEnvs() int
	// EnvAt returns instance i (0 ≤ i < NumEnvs).
	EnvAt(i int) Env
	// ObsDim, ActDim, and ActionBounds describe the shared spaces.
	ObsDim() int
	ActDim() int
	ActionBounds() (lo, hi []float64)
}

// EnvSlice is the canonical VecEnv: a slice of Env instances. Construct
// with NewEnvSlice.
type EnvSlice struct {
	envs   []Env
	lo, hi []float64
}

var _ VecEnv = (*EnvSlice)(nil)

// NewEnvSlice bundles the given environments into a VecEnv. Every
// environment must agree on the observation dimension, the action
// dimension, and the action bounds; a mismatch is a programming error and
// panics.
func NewEnvSlice(envs ...Env) *EnvSlice {
	if len(envs) == 0 {
		panic("rl: NewEnvSlice needs at least one environment")
	}
	ref := envs[0]
	lo, hi := ref.ActionBounds()
	s := &EnvSlice{
		envs: append([]Env(nil), envs...),
		lo:   append([]float64(nil), lo...),
		hi:   append([]float64(nil), hi...),
	}
	for i, e := range envs[1:] {
		if e.ObsDim() != ref.ObsDim() || e.ActDim() != ref.ActDim() {
			panic(fmt.Sprintf("rl: env %d dims (%d, %d) do not match env 0 (%d, %d)",
				i+1, e.ObsDim(), e.ActDim(), ref.ObsDim(), ref.ActDim()))
		}
		elo, ehi := e.ActionBounds()
		for d := range s.lo {
			if elo[d] != s.lo[d] || ehi[d] != s.hi[d] {
				panic(fmt.Sprintf("rl: env %d action bounds dim %d [%g, %g] do not match env 0 [%g, %g]",
					i+1, d, elo[d], ehi[d], s.lo[d], s.hi[d]))
			}
		}
	}
	return s
}

// NumEnvs implements VecEnv.
func (s *EnvSlice) NumEnvs() int { return len(s.envs) }

// EnvAt implements VecEnv.
func (s *EnvSlice) EnvAt(i int) Env { return s.envs[i] }

// ObsDim implements VecEnv.
func (s *EnvSlice) ObsDim() int { return s.envs[0].ObsDim() }

// ActDim implements VecEnv.
func (s *EnvSlice) ActDim() int { return s.envs[0].ActDim() }

// ActionBounds implements VecEnv. The returned slices are owned by the
// EnvSlice and must not be mutated.
func (s *EnvSlice) ActionBounds() (lo, hi []float64) { return s.lo, s.hi }
