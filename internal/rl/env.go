// Package rl implements the deep-reinforcement-learning substrate of the
// paper: a diagonal-Gaussian stochastic policy, a shared actor–critic
// network, Generalized Advantage Estimation, Proximal Policy Optimization
// with the clipped surrogate objective (Eqs. 14–19), and the episode-driven
// training loop of Algorithm 1.
//
// Everything is built on the Go standard library and the vtmig nn package;
// no external deep-learning framework is used.
package rl

// Env is a (possibly partially observable) environment with continuous
// observations and actions. The POMDP of the paper (internal/pomdp) is the
// canonical implementation.
type Env interface {
	// Reset starts a new episode and returns the initial observation.
	Reset() []float64
	// Step applies an action and returns the next observation, the scalar
	// reward, and whether the episode has terminated.
	Step(action []float64) (obs []float64, reward float64, done bool)
	// ObsDim is the length of observations returned by Reset and Step.
	ObsDim() int
	// ActDim is the length of actions expected by Step.
	ActDim() int
	// ActionBounds returns the per-dimension closed action interval
	// [lo[i], hi[i]] that Step accepts. Policies clamp sampled actions to
	// these bounds before stepping.
	ActionBounds() (lo, hi []float64)
}
