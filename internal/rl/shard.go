package rl

import (
	"math"
	"runtime"

	"vtmig/internal/mat"
	"vtmig/internal/nn"
)

// This file implements sharded PPO gradient accumulation: each minibatch
// is split into a fixed number of contiguous row shards, one worker per
// shard runs every strictly per-row operation (observation gather, the
// batched forward pass, the loss gradients, and the input-gradient
// backward chain) on its own clone of the actor–critic, and the master
// then folds the recorded shards into the shared parameter gradients
// serially, in shard order.
//
// Determinism: every cross-row sum — dW += dYᵀ·X, db += colsum(dY), the
// log-std gradient, and the update statistics — is performed only during
// the serial reduction, by the same row-ascending single-accumulator
// kernels the serial pass uses. Reducing contiguous shards in order
// therefore replays the exact addition sequence of the full-batch pass,
// so the summed gradients (and hence the updated weights) are
// bit-identical to the serial path for EVERY shard count, regardless of
// GOMAXPROCS or scheduling. This is the third rule of the determinism
// contract (see doc.go).

const (
	// autoShardCap bounds the automatic shard count: beyond a few workers
	// the serial reduction and fan-out overhead dominate on
	// minibatch-sized problems.
	autoShardCap = 4
	// autoShardMinRows is the smallest minibatch the automatic mode will
	// shard; below it the per-shard GEMMs are too small to amortize the
	// goroutine fan-out. Explicitly configured shard counts are always
	// honored.
	autoShardMinRows = 32
)

// effectiveShards resolves the shard count for a minibatch of the given
// number of rows. The result never exceeds rows, so every shard is
// non-empty.
func (p *PPO) effectiveShards(rows int) int {
	s := p.cfg.Shards
	if s == 0 {
		if rows < autoShardMinRows {
			return 1
		}
		s = runtime.GOMAXPROCS(0)
		if s > autoShardCap {
			s = autoShardCap
		}
	}
	if s > rows {
		s = rows
	}
	if s < 1 {
		s = 1
	}
	return s
}

// acShardView is one worker's private view of the actor–critic network:
// layer clones that share the parameters (values and gradient storage)
// with the master network but own their forward/backward caches. It
// mirrors ActorCritic's batched pass over a row shard, deferring every
// parameter-gradient write to the serial accumulate step.
type acShardView struct {
	trunk   []nn.ShardModule
	meanHd  nn.ShardModule
	valueHd nn.ShardModule
	logStd  []float64 // shared parameter values; read-only during a pass
	actDim  int

	// private counterparts of ActorCritic's batched scratch, grown to the
	// largest shard seen
	meanOutB   mat.Matrix
	valuesB    []float64
	meanGradB  mat.Matrix
	valueDyB   mat.Matrix
	trunkGradB mat.Matrix
}

// newACShardView clones the network's layers for one worker.
func newACShardView(ac *ActorCritic) *acShardView {
	v := &acShardView{logStd: ac.logStd.Value, actDim: ac.actDim}
	for _, m := range ac.trunk {
		v.trunk = append(v.trunk, m.(nn.ShardModule).ShardClone())
	}
	v.meanHd = ac.meanHd.ShardClone()
	v.valueHd = ac.valueHd.ShardClone()
	return v
}

// forwardBatch is ActorCritic.ForwardBatch on the worker's clones: row r
// of the returned mean matrix and element r of the returned values are
// bit-identical to the master network's batched (or sample-at-a-time)
// forward on the same observation row.
func (v *acShardView) forwardBatch(obs *mat.Matrix) (mean *mat.Matrix, values []float64) {
	h := obs
	for _, m := range v.trunk {
		h = m.ForwardBatch(h)
	}
	raw := v.meanHd.ForwardBatch(h)
	v.meanOutB.Resize(raw.Rows, raw.Cols)
	for i, x := range raw.Data {
		v.meanOutB.Data[i] = math.Tanh(x)
	}
	vals := v.valueHd.ForwardBatch(h)
	v.valuesB = growSlice(v.valuesB, vals.Rows)
	copy(v.valuesB, vals.Data)
	return &v.meanOutB, v.valuesB
}

// backwardDeferred is ActorCritic.BackwardBatch minus every cross-row
// parameter-gradient sum: it propagates the input gradients through the
// clones (a strictly per-row computation) and leaves each layer's
// (dY, X) shard recorded for the serial reduction. The log-std gradient
// needs no per-row work at all, so the master reduces it directly from
// the shared dLogStd matrix.
func (v *acShardView) backwardDeferred(dMean *mat.Matrix, dValue []float64) {
	rows := v.meanOutB.Rows
	v.meanGradB.Resize(rows, v.actDim)
	for i, g := range dMean.Data {
		// d tanh(u)/du = 1 - tanh(u)².
		sq := v.meanOutB.Data[i]
		v.meanGradB.Data[i] = g * (1 - sq*sq)
	}
	gm := v.meanHd.BackwardBatchDeferred(&v.meanGradB)
	v.valueDyB.Resize(rows, 1)
	copy(v.valueDyB.Data, dValue)
	gv := v.valueHd.BackwardBatchDeferred(&v.valueDyB)
	v.trunkGradB.Resize(rows, gm.Cols)
	mat.AddTo(&v.trunkGradB, gm, gv)
	g := &v.trunkGradB
	for i := len(v.trunk) - 1; i >= 0; i-- {
		g = v.trunk[i].BackwardBatchDeferred(g)
	}
}

// accumulate folds the worker's recorded shard into the shared parameter
// gradients. Callers invoke it serially, one worker at a time in shard
// order; each parameter's running element-wise accumulation then visits
// the minibatch rows strictly ascending, exactly like the full-batch
// serial backward.
func (v *acShardView) accumulate() {
	v.meanHd.AccumulateDeferred()
	v.valueHd.AccumulateDeferred()
	for i := len(v.trunk) - 1; i >= 0; i-- {
		v.trunk[i].AccumulateDeferred()
	}
}

// ppoWorker runs the per-row half of one minibatch shard. The master sets
// the shard assignment fields, fans the workers out, waits, and then
// reduces; workers only read shared state (weights, rollout steps) and
// write row-disjoint slices of the learner's minibatch scratch.
type ppoWorker struct {
	p   *PPO
	net *acShardView
	// spawn is the pre-bound goroutine body; storing it once keeps the
	// per-update fan-out free of closure allocations.
	spawn func()

	// shard assignment for the current pass, set by the master before the
	// fan-out
	steps  []Transition
	batch  []int
	lo, hi int // row range [lo, hi) of the minibatch

	// borrowed row-range views over the learner's shared minibatch
	// matrices
	obsView, dMeanView mat.Matrix
}

// newPPOWorker builds a worker bound to the learner.
func newPPOWorker(p *PPO) *ppoWorker {
	w := &ppoWorker{p: p, net: newACShardView(p.net)}
	w.spawn = func() {
		defer p.shardWG.Done()
		w.work()
	}
	return w
}

// rowView borrows rows [lo, lo+rows) of m as a matrix header without
// copying or allocating.
func rowView(m *mat.Matrix, lo, rows int) mat.Matrix {
	return mat.Matrix{Rows: rows, Cols: m.Cols, Data: m.Data[lo*m.Cols : (lo+rows)*m.Cols]}
}

// work executes the worker's shard: gather the shard's observation rows,
// forward them through the clone network, compute every per-row loss
// quantity into the shard's rows of the shared scratch, and backpropagate
// the input gradients. No shared parameter gradient is touched.
func (w *ppoWorker) work() {
	p := w.p
	rows := w.hi - w.lo
	scale := 1 / float64(len(w.batch))

	for bi := w.lo; bi < w.hi; bi++ {
		copy(p.obsB.Row(bi), w.steps[w.batch[bi]].Obs)
	}
	w.obsView = rowView(&p.obsB, w.lo, rows)
	means, values := w.net.forwardBatch(&w.obsView)

	logStd := w.net.logStd
	for r := 0; r < rows; r++ {
		bi := w.lo + r
		dMean, dLogStd := p.dMeanB.Row(bi), p.dLogStdB.Row(bi)
		dValue, policyLoss, valueLoss, clipped :=
			p.rowLoss(&w.steps[w.batch[bi]], means.Row(r), logStd, values[r], dMean, dLogStd, scale)
		p.dValueB[bi] = dValue
		p.rowPolicyLoss[bi] = policyLoss
		p.rowValueLoss[bi] = valueLoss
		p.rowEntropy[bi] = gaussianEntropy(logStd)
		if clipped {
			p.rowClipped[bi] = 1
		} else {
			p.rowClipped[bi] = 0
		}
	}

	w.dMeanView = rowView(&p.dMeanB, w.lo, rows)
	w.net.backwardDeferred(&w.dMeanView, p.dValueB[w.lo:w.hi])
}

// updateMiniBatchSharded is the parallel counterpart of the serial branch
// of updateMiniBatch: per-row work fans out across shards, cross-row sums
// reduce serially in fixed shard order. Bit-identical to the serial pass
// for every shard count.
func (p *PPO) updateMiniBatchSharded(steps []Transition, batch []int, stats *UpdateStats, shards int) {
	params := p.net.Params()
	nn.ZeroGrads(params)

	b := len(batch)
	p.obsB.Resize(b, p.net.ObsDim())
	p.dMeanB.Resize(b, p.net.ActDim())
	p.dLogStdB.Resize(b, p.net.ActDim())
	p.dValueB = growSlice(p.dValueB, b)
	p.rowPolicyLoss = growSlice(p.rowPolicyLoss, b)
	p.rowValueLoss = growSlice(p.rowValueLoss, b)
	p.rowEntropy = growSlice(p.rowEntropy, b)
	p.rowClipped = growSlice(p.rowClipped, b)
	for len(p.workers) < shards {
		p.workers = append(p.workers, newPPOWorker(p))
	}

	// Fixed balanced contiguous partition: shard s covers rows
	// [s·b/S, (s+1)·b/S). It depends only on (b, S), never on scheduling.
	for s := 0; s < shards; s++ {
		w := p.workers[s]
		w.steps, w.batch = steps, batch
		w.lo, w.hi = s*b/shards, (s+1)*b/shards
	}
	p.shardWG.Add(shards - 1)
	for s := 1; s < shards; s++ {
		go p.workers[s].spawn()
	}
	p.workers[0].work()
	p.shardWG.Wait()

	// Serial reduction in fixed shard order: parameter gradients first,
	// then the log-std gradient and the statistics row-ascending over the
	// whole minibatch — the exact addition sequence of the serial pass.
	for s := 0; s < shards; s++ {
		w := p.workers[s]
		w.net.accumulate()
		w.steps, w.batch = nil, nil
	}
	p.net.accumulateLogStdGrads(&p.dLogStdB)
	for bi := 0; bi < b; bi++ {
		stats.PolicyLoss += p.rowPolicyLoss[bi]
		stats.ValueLoss += p.rowValueLoss[bi]
		stats.Entropy += p.rowEntropy[bi]
		stats.ClipFraction += p.rowClipped[bi]
		stats.Samples++
	}

	nn.ClipGradNorm(params, p.cfg.MaxGradNorm)
	p.opt.Step(params)
	p.clampLogStd()
}
