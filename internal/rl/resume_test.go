package rl

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"

	"vtmig/internal/nn"
)

// The tests in this file pin the sixth rule of the determinism contract:
// a full checkpoint (weights + Adam moments/step + policy RNG position +
// environment stream states + episode count) restores training
// bit-identically — train K episodes, snapshot, restore into freshly
// constructed envs/agent, train K more is the same run as training 2K
// straight, for any shard count, CollectWorkers, and GOMAXPROCS.

// trainStraight trains a fresh agent for cfg.Episodes and returns it with
// its stats.
func trainStraight(envs int, tcfg TrainerConfig, pcfg PPOConfig) (*PPO, []EpisodeStats) {
	vec := newVecTestSlice(envs, 6, 17, tcfg.RoundsPerEpisode+3)
	agent := NewPPO(6, 1, []float64{0}, []float64{1}, pcfg)
	return agent, NewVecTrainer(vec, agent, tcfg).Run()
}

// trainSplit trains to splitAt episodes, snapshots, round-trips the
// checkpoint through JSON, restores into freshly built envs and agent,
// and trains to the full budget. The two legs may use different worker
// and shard counts (tcfg/firstP vs resumeCfg/resumeP) — pure throughput
// knobs under the contract. It returns the resumed agent and the
// second-leg stats.
func trainSplit(t *testing.T, envs, splitAt int, tcfg, resumeCfg TrainerConfig, firstP, resumeP PPOConfig) (*PPO, []EpisodeStats) {
	t.Helper()
	firstCfg := tcfg
	firstCfg.Episodes = splitAt
	vec1 := newVecTestSlice(envs, 6, 17, tcfg.RoundsPerEpisode+3)
	agent1 := NewPPO(6, 1, []float64{0}, []float64{1}, firstP)
	tr1 := NewVecTrainer(vec1, agent1, firstCfg)
	tr1.Fingerprint = "resume-test"
	tr1.Run()

	ck, err := tr1.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	var buf bytes.Buffer
	if err := ck.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := nn.LoadCheckpoint(&buf)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}

	vec2 := newVecTestSlice(envs, 6, 17, tcfg.RoundsPerEpisode+3)
	agent2 := NewPPO(6, 1, []float64{0}, []float64{1}, resumeP)
	tr2, err := ResumeTrainer(vec2, agent2, resumeCfg, loaded)
	if err != nil {
		t.Fatalf("ResumeTrainer: %v", err)
	}
	if tr2.Completed() != splitAt || tr2.Fingerprint != "resume-test" {
		t.Fatalf("resumed trainer at %d episodes (fingerprint %q), want %d (resume-test)",
			tr2.Completed(), tr2.Fingerprint, splitAt)
	}
	return agent2, tr2.Run()
}

// TestResumeBitIdentity is the resume-equality table: snapshot-at-K-then-
// train-K must equal train-2K for every combination of environment count,
// collection workers, shard count, and GOMAXPROCS — including worker and
// shard counts that differ between the snapshot and the resume leg.
func TestResumeBitIdentity(t *testing.T) {
	const rounds, updateEvery = 20, 10
	cells := []struct {
		name                        string
		envs, splitAt, total        int
		firstWorkers, resumeWorkers int
		firstShards, resumeShards   int
		gomaxprocs                  int
	}{
		{name: "serial", envs: 1, splitAt: 3, total: 6, firstWorkers: 1, resumeWorkers: 1, firstShards: 1, resumeShards: 1, gomaxprocs: 1},
		{name: "odd-split", envs: 1, splitAt: 2, total: 7, firstWorkers: 1, resumeWorkers: 1, firstShards: 1, resumeShards: 1, gomaxprocs: 2},
		{name: "sharded-resume", envs: 1, splitAt: 3, total: 6, firstWorkers: 1, resumeWorkers: 1, firstShards: 1, resumeShards: 3, gomaxprocs: 4},
		{name: "vec", envs: 2, splitAt: 2, total: 6, firstWorkers: 2, resumeWorkers: 1, firstShards: 2, resumeShards: 1, gomaxprocs: 2},
		{name: "vec-workers-differ", envs: 3, splitAt: 3, total: 6, firstWorkers: 1, resumeWorkers: 4, firstShards: 0, resumeShards: 2, gomaxprocs: 4},
	}
	for _, tc := range cells {
		t.Run(tc.name, func(t *testing.T) {
			prev := runtime.GOMAXPROCS(tc.gomaxprocs)
			defer runtime.GOMAXPROCS(prev)

			pcfg := DefaultPPOConfig()
			pcfg.Seed = 23

			straightCfg := TrainerConfig{Episodes: tc.total, RoundsPerEpisode: rounds,
				UpdateEvery: updateEvery, CollectWorkers: 1}
			straightP := pcfg
			straightP.Shards = 1
			ref, refStats := trainStraight(tc.envs, straightCfg, straightP)

			firstP := pcfg
			firstP.Shards = tc.firstShards
			firstCfg := straightCfg
			firstCfg.CollectWorkers = tc.firstWorkers
			resumeP := pcfg
			resumeP.Shards = tc.resumeShards
			resumeCfg := straightCfg
			resumeCfg.CollectWorkers = tc.resumeWorkers
			resumed, tail := trainSplit(t, tc.envs, tc.splitAt, firstCfg, resumeCfg, firstP, resumeP)

			if diff, ok := paramsEqualBits(ref.Params(), resumed.Params()); !ok {
				t.Fatalf("resumed weights diverged from straight training: %s", diff)
			}
			if diff, ok := statsEqualBits(refStats[len(refStats)-len(tail):], tail); !ok {
				t.Fatalf("resumed stats diverged: %s", diff)
			}
			// The RNG stream positions must line up too, or the NEXT draw
			// would diverge.
			ckA, err := ref.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			ckB, err := resumed.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ckA.RNG, ckB.RNG) {
				t.Fatalf("policy RNG position %+v, want %+v", ckB.RNG, ckA.RNG)
			}
			if ckA.Opt.Step != ckB.Opt.Step {
				t.Fatalf("optimizer step %d, want %d", ckB.Opt.Step, ckA.Opt.Step)
			}
		})
	}
}

// TestResumeShardedAgentBitIdentity pins that the RESUMED leg may change
// the shard count mid-stream: resuming a serial-trained checkpoint into a
// sharded learner (and vice versa) stays on the reference trajectory.
// (Covered by the table above for selected cells; this test sweeps shard
// counts densely on the serial env.)
func TestResumeShardedAgentBitIdentity(t *testing.T) {
	tcfg := TrainerConfig{Episodes: 6, RoundsPerEpisode: 20, UpdateEvery: 10, CollectWorkers: 1}
	pcfg := DefaultPPOConfig()
	pcfg.Seed = 31
	pcfg.Shards = 1
	ref, _ := trainStraight(1, tcfg, pcfg)

	for _, shards := range []int{1, 2, 3, 5} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			resumeP := pcfg
			resumeP.Shards = shards
			resumed, _ := trainSplit(t, 1, 3, tcfg, tcfg, pcfg, resumeP)
			if diff, ok := paramsEqualBits(ref.Params(), resumed.Params()); !ok {
				t.Fatalf("resumed weights diverged: %s", diff)
			}
		})
	}
}

// TestAgentSnapshotRoundTripValueIdentical is the agent-level round-trip
// property: Snapshot → Save → Load → Restore reproduces weights, moments,
// and the RNG position value-identically, and the restored agent's next
// stochastic action matches the original's.
func TestAgentSnapshotRoundTripValueIdentical(t *testing.T) {
	pcfg := DefaultPPOConfig()
	pcfg.Seed = 9
	agent, _ := trainStraight(1, TrainerConfig{Episodes: 2, RoundsPerEpisode: 15, UpdateEvery: 5, CollectWorkers: 1}, pcfg)

	ck, err := agent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ck.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := nn.LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	clone := NewPPO(6, 1, []float64{0}, []float64{1}, pcfg)
	if err := clone.Restore(loaded); err != nil {
		t.Fatal(err)
	}
	if diff, ok := paramsEqualBits(agent.Params(), clone.Params()); !ok {
		t.Fatalf("restored weights differ: %s", diff)
	}
	obs := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	wantRaw, _, wantLogP, wantV := agent.SelectAction(obs)
	gotRaw, _, gotLogP, gotV := clone.SelectAction(obs)
	if math.Float64bits(wantRaw[0]) != math.Float64bits(gotRaw[0]) ||
		math.Float64bits(wantLogP) != math.Float64bits(gotLogP) ||
		math.Float64bits(wantV) != math.Float64bits(gotV) {
		t.Fatal("restored agent's next stochastic action diverged")
	}
}

// TestAgentClone pins Clone: an independent learner in the same state
// whose subsequent training does not touch the original.
func TestAgentClone(t *testing.T) {
	pcfg := DefaultPPOConfig()
	pcfg.Seed = 4
	agent, _ := trainStraight(1, TrainerConfig{Episodes: 2, RoundsPerEpisode: 15, UpdateEvery: 5, CollectWorkers: 1}, pcfg)
	before, err := agent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	clone, err := agent.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if diff, ok := paramsEqualBits(agent.Params(), clone.Params()); !ok {
		t.Fatalf("clone weights differ: %s", diff)
	}
	// Train the clone further; the original must be untouched.
	vec := newVecTestSlice(1, 6, 99, 20)
	NewVecTrainer(vec, clone, TrainerConfig{Episodes: 1, RoundsPerEpisode: 10, UpdateEvery: 5, CollectWorkers: 1}).Run()
	after, err := agent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after.RNG, before.RNG) {
		t.Fatal("training the clone moved the original's RNG")
	}
	if diff, ok := paramsEqualBits(agent.Params(), clone.Params()); ok {
		t.Fatalf("clone did not train independently: %s", diff)
	}
}

// TestRestoreErrors pins the strict-restore failure modes at the rl
// level.
func TestRestoreErrors(t *testing.T) {
	pcfg := DefaultPPOConfig()
	pcfg.Seed = 2
	agent := NewPPO(6, 1, []float64{0}, []float64{1}, pcfg)
	full, err := agent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("weights-only-into-Restore", func(t *testing.T) {
		weightsOnly, err := nn.Snapshot(agent.Params())
		if err != nil {
			t.Fatal(err)
		}
		if err := agent.Restore(weightsOnly); err == nil {
			t.Fatal("weights-only checkpoint accepted by full Restore")
		}
		if err := agent.RestoreWeights(weightsOnly); err != nil {
			t.Fatalf("RestoreWeights rejected weights-only checkpoint: %v", err)
		}
	})

	t.Run("architecture-mismatch", func(t *testing.T) {
		other := NewPPO(4, 1, []float64{0}, []float64{1}, pcfg)
		if err := other.Restore(full); err == nil {
			t.Fatal("checkpoint from different architecture restored")
		}
	})

	t.Run("hyperparameter-mismatch", func(t *testing.T) {
		hot := pcfg
		hot.LR = pcfg.LR * 10
		other := NewPPO(6, 1, []float64{0}, []float64{1}, hot)
		if err := other.Restore(full); err == nil {
			t.Fatal("checkpoint restored into a learner with a different learning rate")
		}
		// Throughput knobs and seed are normalized out of the learner
		// fingerprint.
		sharded := pcfg
		sharded.Shards = 3
		sharded.Seed = 99
		if sharded.Fingerprint() != pcfg.Fingerprint() {
			t.Fatal("Shards/Seed changed the learner fingerprint")
		}
	})

	t.Run("trainer-needs-meta", func(t *testing.T) {
		vec := newVecTestSlice(1, 6, 1, 10)
		tr := NewVecTrainer(vec, agent, TrainerConfig{Episodes: 2, RoundsPerEpisode: 5, UpdateEvery: 5})
		noMeta := *full
		noMeta.Meta = nil
		if err := tr.Restore(&noMeta); err == nil {
			t.Fatal("checkpoint without metadata resumed")
		}
	})

	t.Run("trainer-env-count", func(t *testing.T) {
		vec := newVecTestSlice(2, 6, 1, 10)
		a2 := NewPPO(6, 1, []float64{0}, []float64{1}, pcfg)
		tr := NewVecTrainer(vec, a2, TrainerConfig{Episodes: 2, RoundsPerEpisode: 5, UpdateEvery: 5})
		ck := *full
		ck.Meta = &nn.TrainMeta{Episodes: 1}
		ck.Envs = []nn.EnvState{{}} // one stream for a two-env trainer
		if err := tr.Restore(&ck); err == nil {
			t.Fatal("env-count mismatch resumed")
		}
	})

	t.Run("misaligned-block-boundary", func(t *testing.T) {
		// A snapshot at 3 episodes cannot resume on a 2-env schedule with
		// budget 6: the uninterrupted run blocks at 2/4/6, so continuing
		// from 3 would partition the remaining episodes differently.
		vec := newVecTestSlice(2, 6, 1, 10)
		a2 := NewPPO(6, 1, []float64{0}, []float64{1}, pcfg)
		tr := NewVecTrainer(vec, a2, TrainerConfig{Episodes: 6, RoundsPerEpisode: 5, UpdateEvery: 5})
		ck := *full
		ck.Meta = &nn.TrainMeta{Episodes: 3}
		ck.Envs = []nn.EnvState{{}, {}}
		if err := tr.Restore(&ck); err == nil {
			t.Fatal("misaligned episode count resumed")
		}
	})

	t.Run("beyond-budget", func(t *testing.T) {
		vec := newVecTestSlice(1, 6, 1, 10)
		a2 := NewPPO(6, 1, []float64{0}, []float64{1}, pcfg)
		_, err := ResumeTrainer(vec, a2, TrainerConfig{Episodes: 2, RoundsPerEpisode: 5, UpdateEvery: 5},
			&nn.Checkpoint{Version: nn.CheckpointVersion, Params: full.Params, Opt: full.Opt, RNG: full.RNG,
				Envs: []nn.EnvState{{}}, Meta: &nn.TrainMeta{Episodes: 5}})
		if err == nil {
			t.Fatal("checkpoint beyond the episode budget resumed")
		}
	})
}

// TestRunBudgetAndRewind pins the episode accounting: cfg.Episodes is the
// stream's TOTAL budget (a Run on an exhausted trainer is a no-op), and
// Rewind re-opens a full budget on the current state.
func TestRunBudgetAndRewind(t *testing.T) {
	pcfg := DefaultPPOConfig()
	pcfg.Seed = 8
	vec := newVecTestSlice(1, 6, 17, 25)
	agent := NewPPO(6, 1, []float64{0}, []float64{1}, pcfg)
	trainer := NewVecTrainer(vec, agent, TrainerConfig{Episodes: 2, RoundsPerEpisode: 10, UpdateEvery: 5})
	if got := len(trainer.Run()); got != 2 {
		t.Fatalf("first Run trained %d episodes, want 2", got)
	}
	if trainer.Completed() != 2 {
		t.Fatalf("completed %d, want 2", trainer.Completed())
	}
	if got := len(trainer.Run()); got != 0 {
		t.Fatalf("exhausted Run trained %d episodes, want 0", got)
	}
	trainer.Rewind()
	if stats := trainer.Run(); len(stats) != 2 || stats[0].Episode != 0 {
		t.Fatalf("rewound Run trained %d episodes starting at %d, want 2 from 0", len(stats), stats[0].Episode)
	}
	if trainer.Completed() != 2 {
		t.Fatalf("completed after rewound run %d, want 2", trainer.Completed())
	}
}

// TestTrainingAllocationFreeAfterSnapshotRestore is the alloc gate of the
// checkpoint subsystem: a Snapshot/Restore cycle must not regress the
// zero-allocation steady state of the training loop — after the cycle, a
// full collect/update block still does not touch the heap.
func TestTrainingAllocationFreeAfterSnapshotRestore(t *testing.T) {
	pcfg := DefaultPPOConfig()
	pcfg.Seed = 12
	vec := newVecTestSlice(2, 6, 5, 200)
	agent := NewPPO(6, 1, []float64{0}, []float64{1}, pcfg)
	col := NewVecCollector(vec, agent, 2)
	buf := NewRollout(0)

	block := func() {
		buf.Reset()
		col.Begin(2)
		for k := 0; k < 20; k++ {
			col.Step(k == 19)
			if (k+1)%10 == 0 {
				col.Merge(buf)
				agent.Update(buf)
			}
		}
	}
	block() // warm up scratch

	ck, err := agent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Restore(ck); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(10, block); n != 0 {
		t.Errorf("training block allocates %v times after Snapshot/Restore, want 0", n)
	}
}
