package rl

import (
	"testing"

	"vtmig/internal/mat"
)

// TestValuesMatchesValue checks that the batched critic evaluation is
// bit-identical to calling Value once per rollout-step observation, and
// that it does not allocate once warm.
func TestValuesMatchesValue(t *testing.T) {
	agent, buf, _ := newAllocAgent(t)
	steps := buf.Steps()
	obs := mat.New(len(steps), 12)
	for i, tr := range steps {
		copy(obs.Row(i), tr.Obs)
	}
	got := make([]float64, len(steps))
	agent.Values(obs, got)
	for i, tr := range steps {
		if want := agent.Value(tr.Obs); got[i] != want {
			t.Fatalf("step %d: Values gives %v, Value gives %v", i, got[i], want)
		}
	}
	if n := testing.AllocsPerRun(20, func() { agent.Values(obs, got) }); n != 0 {
		t.Errorf("Values allocates %v times per call, want 0", n)
	}
}

func TestValuesLengthMismatchPanics(t *testing.T) {
	agent, _, _ := newAllocAgent(t)
	defer func() {
		if recover() == nil {
			t.Fatal("short dst did not panic")
		}
	}()
	agent.Values(mat.New(3, 12), make([]float64, 2))
}
