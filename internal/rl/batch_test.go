package rl

import (
	"testing"

	"vtmig/internal/mat"
)

// TestValuesMatchesValue checks that the batched critic evaluation is
// bit-identical to calling Value once per rollout-step observation, and
// that it does not allocate once warm.
func TestValuesMatchesValue(t *testing.T) {
	agent, buf, _ := newAllocAgent(t)
	steps := buf.Steps()
	obs := mat.New(len(steps), 12)
	for i, tr := range steps {
		copy(obs.Row(i), tr.Obs)
	}
	got := make([]float64, len(steps))
	agent.Values(obs, got)
	for i, tr := range steps {
		if want := agent.Value(tr.Obs); got[i] != want {
			t.Fatalf("step %d: Values gives %v, Value gives %v", i, got[i], want)
		}
	}
	if n := testing.AllocsPerRun(20, func() { agent.Values(obs, got) }); n != 0 {
		t.Errorf("Values allocates %v times per call, want 0", n)
	}
}

// TestMeanActionBatchMatchesMeanAction checks that the batched
// deterministic readout is bit-identical to calling MeanAction once per
// observation, consumes no RNG (the sampling stream position is
// untouched), and does not allocate once warm.
func TestMeanActionBatchMatchesMeanAction(t *testing.T) {
	agent, buf, _ := newAllocAgent(t)
	steps := buf.Steps()
	obs := mat.New(len(steps), 12)
	for i, tr := range steps {
		copy(obs.Row(i), tr.Obs)
	}
	callsBefore := agent.src.Calls()
	dst := mat.New(len(steps), agent.ActDim())
	agent.MeanActionBatch(obs, dst)
	if agent.src.Calls() != callsBefore {
		t.Fatalf("MeanActionBatch consumed RNG: %d calls before, %d after", callsBefore, agent.src.Calls())
	}
	for i, tr := range steps {
		want := agent.MeanAction(tr.Obs)
		got := dst.Row(i)
		if len(got) != len(want) {
			t.Fatalf("step %d: row length %d, want %d", i, len(got), len(want))
		}
		for d := range want {
			if got[d] != want[d] {
				t.Fatalf("step %d dim %d: MeanActionBatch gives %v, MeanAction gives %v", i, d, got[d], want[d])
			}
		}
	}
	if n := testing.AllocsPerRun(20, func() { agent.MeanActionBatch(obs, dst) }); n != 0 {
		t.Errorf("MeanActionBatch allocates %v times per call, want 0", n)
	}
}

func TestValuesLengthMismatchPanics(t *testing.T) {
	agent, _, _ := newAllocAgent(t)
	defer func() {
		if recover() == nil {
			t.Fatal("short dst did not panic")
		}
	}()
	agent.Values(mat.New(3, 12), make([]float64, 2))
}
