package rl

import (
	"fmt"

	"vtmig/internal/nn"
)

// TrainerConfig parameterizes Algorithm 1 of the paper.
type TrainerConfig struct {
	// Episodes is E, the number of training episodes.
	Episodes int
	// RoundsPerEpisode is K, the number of game rounds per episode.
	RoundsPerEpisode int
	// UpdateEvery is |I|: an optimization phase runs whenever this many
	// new transitions have been collected (and at episode end).
	UpdateEvery int
	// CollectWorkers is the number of goroutines stepping environments
	// during vectorized collection: 0 selects automatically
	// (min(GOMAXPROCS, env count, a small cap)), 1 steps serially. Any
	// value produces bit-identical training runs (the fourth rule of the
	// determinism contract) — it is purely a throughput knob.
	CollectWorkers int
}

// validate panics on invalid settings.
func (c TrainerConfig) validate() {
	if c.Episodes <= 0 || c.RoundsPerEpisode <= 0 || c.UpdateEvery <= 0 || c.CollectWorkers < 0 {
		panic(fmt.Sprintf("rl: invalid TrainerConfig %+v", c))
	}
}

// EpisodeStats reports one training episode.
type EpisodeStats struct {
	// Episode is the zero-based episode index.
	Episode int
	// Return is the undiscounted sum of rewards over the episode — the
	// quantity plotted in Fig. 2(a).
	Return float64
	// MeanReward is Return / K.
	MeanReward float64
	// FinalUpdate carries the statistics of the last optimization phase
	// of the episode (with vectorized collection, of the episode block the
	// episode belongs to — the block's episodes share update phases).
	FinalUpdate UpdateStats
}

// Trainer runs the episode loop of Algorithm 1: collect transitions from
// the environment with the current policy, and every |I| rounds run a PPO
// optimization phase on the buffered segment.
//
// With a multi-env VecEnv (NewVecTrainer), episodes run in lockstep
// blocks of up to NumEnvs independently seeded environments: each round
// evaluates the policy for every live env in one batched pass and steps
// the envs across CollectWorkers goroutines, and an optimization phase
// runs whenever the block has staged |I| new transitions (and at block
// end). The block's transitions merge into the shared rollout in fixed
// env-index order, so the run is bit-reproducible for a fixed seed and
// independent of the worker count. A single-env trainer is bit-identical
// to the classic serial collect loop.
type Trainer struct {
	cfg   TrainerConfig
	vec   VecEnv
	agent *PPO
	buf   *Rollout
	col   *VecCollector

	// completed counts the episodes finished so far, across Run calls and
	// across a Restore: Run trains from completed up to cfg.Episodes, so
	// cfg.Episodes is always the TOTAL episode budget of the training
	// stream, resumed or not.
	completed int

	// statsBuf is the per-block EpisodeStats scratch, reused so the
	// steady-state episode loop stays allocation-free.
	statsBuf []EpisodeStats

	// OnEpisode, when non-nil, is invoked after every episode with its
	// statistics. Returning false stops training early (with vectorized
	// collection, at the end of the current episode block). The callback
	// runs at an episode-block boundary, so calling Snapshot from it is
	// valid.
	OnEpisode func(EpisodeStats) bool

	// Fingerprint, when set, is embedded in snapshots as
	// Meta.Fingerprint — an opaque pin of the training configuration that
	// resume paths check before restoring (experiments.DRLConfig
	// .Fingerprint is the canonical producer).
	Fingerprint string
}

// NewTrainer wires a single environment and a PPO learner together — the
// paper's serial Algorithm 1.
func NewTrainer(env Env, agent *PPO, cfg TrainerConfig) *Trainer {
	return NewVecTrainer(NewEnvSlice(env), agent, cfg)
}

// NewVecTrainer wires a vectorized environment and a PPO learner
// together. Up to vec.NumEnvs() episodes run in parallel per block.
func NewVecTrainer(vec VecEnv, agent *PPO, cfg TrainerConfig) *Trainer {
	cfg.validate()
	return &Trainer{
		cfg:   cfg,
		vec:   vec,
		agent: agent,
		buf:   NewRollout(cfg.RoundsPerEpisode * vec.NumEnvs()),
		col:   NewVecCollector(vec, agent, cfg.CollectWorkers),
	}
}

// Run executes the training loop from the episodes already completed
// (zero for a fresh trainer, the checkpointed count after a Restore) up
// to cfg.Episodes, and returns the per-episode statistics of the episodes
// it ran.
func (t *Trainer) Run() []EpisodeStats {
	rem := t.cfg.Episodes - t.completed
	if rem < 0 {
		rem = 0
	}
	out := make([]EpisodeStats, 0, rem)
	for t.completed < t.cfg.Episodes {
		active := t.vec.NumEnvs()
		if rem := t.cfg.Episodes - t.completed; active > rem {
			active = rem
		}
		stats := t.runBlock(t.completed, active)
		t.completed += active
		stop := false
		for _, s := range stats {
			out = append(out, s)
			if t.OnEpisode != nil && !t.OnEpisode(s) {
				stop = true
			}
		}
		if stop {
			break
		}
	}
	return out
}

// Completed returns the number of episodes finished so far (cumulative
// across Run calls, seeded by a Restore).
func (t *Trainer) Completed() int { return t.completed }

// Rewind resets the episode counter to zero without touching the agent or
// the environments, so the next Run trains a full cfg.Episodes more on
// the current state — continued training beyond the original budget, or
// re-measuring fixed-size blocks in benchmarks. (A Run on a trainer whose
// budget is exhausted is otherwise a no-op: cfg.Episodes is the TOTAL
// budget of the stream, which is what makes resume-after-Restore
// bit-identical.)
func (t *Trainer) Rewind() { t.completed = 0 }

// Snapshot captures the complete training state at the current
// episode-block boundary: the agent's weights, optimizer state, and RNG
// stream (PPO.Snapshot), each environment stream's cross-episode state in
// env-index order, and the episode count plus configuration fingerprint.
// Every environment must implement SnapshotEnv. Valid between Run calls
// and from an OnEpisode callback; a trainer restored from the result
// (ResumeTrainer) continues bit-identically to one that never stopped —
// determinism contract rule 6.
func (t *Trainer) Snapshot() (*nn.Checkpoint, error) {
	ck, err := t.agent.Snapshot()
	if err != nil {
		return nil, err
	}
	n := t.vec.NumEnvs()
	ck.Envs = make([]nn.EnvState, n)
	for e := 0; e < n; e++ {
		se, ok := t.vec.EnvAt(e).(SnapshotEnv)
		if !ok {
			return nil, fmt.Errorf("rl: env %d (%T) does not support checkpointing", e, t.vec.EnvAt(e))
		}
		ck.Envs[e] = se.EnvSnapshot()
	}
	// The agent snapshot already carries the learner fingerprint in Meta;
	// fill in the trainer-level metadata alongside it.
	ck.Meta.Episodes = t.completed
	ck.Meta.Fingerprint = t.Fingerprint
	return ck, nil
}

// Restore rewinds a freshly constructed trainer to a checkpointed
// training state: the agent is fully restored (weights, optimizer, RNG),
// every environment stream is rewound to its recorded position, and the
// episode counter resumes at the checkpointed count — the next Run trains
// the remaining cfg.Episodes − Meta.Episodes episodes exactly as an
// uninterrupted run would. The trainer's environments and configuration
// must match the checkpoint's, and the checkpointed episode count must
// fall on an episode-block boundary of the resumed schedule (a multiple
// of NumEnvs, or the full budget; always true with a single environment)
// — a snapshot taken after a truncated final block cannot be extended
// bit-identically, so Restore rejects it instead of silently diverging
// from an uninterrupted run. On error the checkpoint may have been
// partially applied to the freshly built environments (the caller-owned
// agent is mutated last, only after every environment restored cleanly);
// discard the trainer, envs, and agent and rebuild.
func (t *Trainer) Restore(ck *nn.Checkpoint) error {
	if ck == nil {
		return fmt.Errorf("rl: nil checkpoint")
	}
	if ck.Meta == nil {
		return fmt.Errorf("rl: checkpoint has no training metadata; cannot resume")
	}
	if ck.Meta.Episodes > t.cfg.Episodes {
		return fmt.Errorf("rl: checkpoint completed %d episodes, beyond the configured total %d", ck.Meta.Episodes, t.cfg.Episodes)
	}
	n := t.vec.NumEnvs()
	if ck.Meta.Episodes%n != 0 && ck.Meta.Episodes != t.cfg.Episodes {
		return fmt.Errorf("rl: checkpoint at %d episodes is not an episode-block boundary of a %d-env schedule; an uninterrupted run would partition the remaining episodes differently, so the resume cannot be bit-identical", ck.Meta.Episodes, n)
	}
	if len(ck.Envs) != n {
		return fmt.Errorf("rl: checkpoint carries %d environment streams, trainer has %d", len(ck.Envs), n)
	}
	// Verify every env supports restoring before mutating anything.
	envs := make([]SnapshotEnv, n)
	for e := 0; e < n; e++ {
		se, ok := t.vec.EnvAt(e).(SnapshotEnv)
		if !ok {
			return fmt.Errorf("rl: env %d (%T) does not support checkpointing", e, t.vec.EnvAt(e))
		}
		envs[e] = se
	}
	for e, se := range envs {
		if err := se.EnvRestore(ck.Envs[e]); err != nil {
			return fmt.Errorf("rl: restoring env %d: %w", e, err)
		}
	}
	if err := t.agent.Restore(ck); err != nil {
		return err
	}
	t.completed = ck.Meta.Episodes
	t.Fingerprint = ck.Meta.Fingerprint
	return nil
}

// ResumeTrainer builds a trainer that continues a checkpointed training
// run: vec and agent must be freshly constructed with the checkpoint's
// configuration (same environment seeds and count, same network
// architecture), cfg.Episodes is the TOTAL episode budget, and ck is a
// full training checkpoint from Trainer.Snapshot. The returned trainer's
// Run picks the stream up at the checkpointed episode and is bit-identical
// to an uninterrupted run for any CollectWorkers, shard count, and
// GOMAXPROCS (determinism contract rule 6).
func ResumeTrainer(vec VecEnv, agent *PPO, cfg TrainerConfig, ck *nn.Checkpoint) (*Trainer, error) {
	t := NewVecTrainer(vec, agent, cfg)
	if err := t.Restore(ck); err != nil {
		return nil, err
	}
	return t, nil
}

// runBlock plays one lockstep episode block over the first active envs
// (Algorithm 1, lines 4–14; active == 1 reproduces the serial per-episode
// body exactly). The returned slice aliases trainer-owned scratch
// overwritten by the next block.
func (t *Trainer) runBlock(firstEpisode, active int) []EpisodeStats {
	t.col.Begin(active)
	t.buf.Reset()

	var lastUpdate UpdateStats
	since := 0
	for k := 0; k < t.cfg.RoundsPerEpisode && t.col.Live() > 0; k++ {
		final := k == t.cfg.RoundsPerEpisode-1
		since += t.col.Step(final)
		if since >= t.cfg.UpdateEvery || final || t.col.Live() == 0 {
			t.col.Merge(t.buf)
			lastUpdate = t.agent.Update(t.buf)
			since = 0
		}
	}

	if cap(t.statsBuf) < active {
		t.statsBuf = make([]EpisodeStats, active)
	}
	stats := t.statsBuf[:active]
	returns := t.col.Returns()
	for e := 0; e < active; e++ {
		stats[e] = EpisodeStats{
			Episode:     firstEpisode + e,
			Return:      returns[e],
			MeanReward:  returns[e] / float64(t.cfg.RoundsPerEpisode),
			FinalUpdate: lastUpdate,
		}
	}
	return stats
}
