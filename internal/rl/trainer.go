package rl

import "fmt"

// TrainerConfig parameterizes Algorithm 1 of the paper.
type TrainerConfig struct {
	// Episodes is E, the number of training episodes.
	Episodes int
	// RoundsPerEpisode is K, the number of game rounds per episode.
	RoundsPerEpisode int
	// UpdateEvery is |I|: an optimization phase runs whenever this many
	// new transitions have been collected (and at episode end).
	UpdateEvery int
	// CollectWorkers is the number of goroutines stepping environments
	// during vectorized collection: 0 selects automatically
	// (min(GOMAXPROCS, env count, a small cap)), 1 steps serially. Any
	// value produces bit-identical training runs (the fourth rule of the
	// determinism contract) — it is purely a throughput knob.
	CollectWorkers int
}

// validate panics on invalid settings.
func (c TrainerConfig) validate() {
	if c.Episodes <= 0 || c.RoundsPerEpisode <= 0 || c.UpdateEvery <= 0 || c.CollectWorkers < 0 {
		panic(fmt.Sprintf("rl: invalid TrainerConfig %+v", c))
	}
}

// EpisodeStats reports one training episode.
type EpisodeStats struct {
	// Episode is the zero-based episode index.
	Episode int
	// Return is the undiscounted sum of rewards over the episode — the
	// quantity plotted in Fig. 2(a).
	Return float64
	// MeanReward is Return / K.
	MeanReward float64
	// FinalUpdate carries the statistics of the last optimization phase
	// of the episode (with vectorized collection, of the episode block the
	// episode belongs to — the block's episodes share update phases).
	FinalUpdate UpdateStats
}

// Trainer runs the episode loop of Algorithm 1: collect transitions from
// the environment with the current policy, and every |I| rounds run a PPO
// optimization phase on the buffered segment.
//
// With a multi-env VecEnv (NewVecTrainer), episodes run in lockstep
// blocks of up to NumEnvs independently seeded environments: each round
// evaluates the policy for every live env in one batched pass and steps
// the envs across CollectWorkers goroutines, and an optimization phase
// runs whenever the block has staged |I| new transitions (and at block
// end). The block's transitions merge into the shared rollout in fixed
// env-index order, so the run is bit-reproducible for a fixed seed and
// independent of the worker count. A single-env trainer is bit-identical
// to the classic serial collect loop.
type Trainer struct {
	cfg   TrainerConfig
	vec   VecEnv
	agent *PPO
	buf   *Rollout
	col   *VecCollector

	// statsBuf is the per-block EpisodeStats scratch, reused so the
	// steady-state episode loop stays allocation-free.
	statsBuf []EpisodeStats

	// OnEpisode, when non-nil, is invoked after every episode with its
	// statistics. Returning false stops training early (with vectorized
	// collection, at the end of the current episode block).
	OnEpisode func(EpisodeStats) bool
}

// NewTrainer wires a single environment and a PPO learner together — the
// paper's serial Algorithm 1.
func NewTrainer(env Env, agent *PPO, cfg TrainerConfig) *Trainer {
	return NewVecTrainer(NewEnvSlice(env), agent, cfg)
}

// NewVecTrainer wires a vectorized environment and a PPO learner
// together. Up to vec.NumEnvs() episodes run in parallel per block.
func NewVecTrainer(vec VecEnv, agent *PPO, cfg TrainerConfig) *Trainer {
	cfg.validate()
	return &Trainer{
		cfg:   cfg,
		vec:   vec,
		agent: agent,
		buf:   NewRollout(cfg.RoundsPerEpisode * vec.NumEnvs()),
		col:   NewVecCollector(vec, agent, cfg.CollectWorkers),
	}
}

// Run executes the training loop and returns per-episode statistics.
func (t *Trainer) Run() []EpisodeStats {
	out := make([]EpisodeStats, 0, t.cfg.Episodes)
	for done := 0; done < t.cfg.Episodes; {
		active := t.vec.NumEnvs()
		if rem := t.cfg.Episodes - done; active > rem {
			active = rem
		}
		stop := false
		for _, s := range t.runBlock(done, active) {
			out = append(out, s)
			if t.OnEpisode != nil && !t.OnEpisode(s) {
				stop = true
			}
		}
		if stop {
			break
		}
		done += active
	}
	return out
}

// runBlock plays one lockstep episode block over the first active envs
// (Algorithm 1, lines 4–14; active == 1 reproduces the serial per-episode
// body exactly). The returned slice aliases trainer-owned scratch
// overwritten by the next block.
func (t *Trainer) runBlock(firstEpisode, active int) []EpisodeStats {
	t.col.Begin(active)
	t.buf.Reset()

	var lastUpdate UpdateStats
	since := 0
	for k := 0; k < t.cfg.RoundsPerEpisode && t.col.Live() > 0; k++ {
		final := k == t.cfg.RoundsPerEpisode-1
		since += t.col.Step(final)
		if since >= t.cfg.UpdateEvery || final || t.col.Live() == 0 {
			t.col.Merge(t.buf)
			lastUpdate = t.agent.Update(t.buf)
			since = 0
		}
	}

	if cap(t.statsBuf) < active {
		t.statsBuf = make([]EpisodeStats, active)
	}
	stats := t.statsBuf[:active]
	returns := t.col.Returns()
	for e := 0; e < active; e++ {
		stats[e] = EpisodeStats{
			Episode:     firstEpisode + e,
			Return:      returns[e],
			MeanReward:  returns[e] / float64(t.cfg.RoundsPerEpisode),
			FinalUpdate: lastUpdate,
		}
	}
	return stats
}
