package rl

import "fmt"

// TrainerConfig parameterizes Algorithm 1 of the paper.
type TrainerConfig struct {
	// Episodes is E, the number of training episodes.
	Episodes int
	// RoundsPerEpisode is K, the number of game rounds per episode.
	RoundsPerEpisode int
	// UpdateEvery is |I|: an optimization phase runs whenever this many
	// new transitions have been collected (and at episode end).
	UpdateEvery int
}

// validate panics on invalid settings.
func (c TrainerConfig) validate() {
	if c.Episodes <= 0 || c.RoundsPerEpisode <= 0 || c.UpdateEvery <= 0 {
		panic(fmt.Sprintf("rl: invalid TrainerConfig %+v", c))
	}
}

// EpisodeStats reports one training episode.
type EpisodeStats struct {
	// Episode is the zero-based episode index.
	Episode int
	// Return is the undiscounted sum of rewards over the episode — the
	// quantity plotted in Fig. 2(a).
	Return float64
	// MeanReward is Return / K.
	MeanReward float64
	// FinalUpdate carries the statistics of the last optimization phase
	// of the episode.
	FinalUpdate UpdateStats
}

// Trainer runs the episode loop of Algorithm 1: collect transitions from
// the environment with the current policy, and every |I| rounds run a PPO
// optimization phase on the buffered segment.
type Trainer struct {
	cfg   TrainerConfig
	env   Env
	agent *PPO
	buf   *Rollout

	// OnEpisode, when non-nil, is invoked after every episode with its
	// statistics. Returning false stops training early.
	OnEpisode func(EpisodeStats) bool
}

// NewTrainer wires an environment and a PPO learner together.
func NewTrainer(env Env, agent *PPO, cfg TrainerConfig) *Trainer {
	cfg.validate()
	return &Trainer{
		cfg:   cfg,
		env:   env,
		agent: agent,
		buf:   NewRollout(cfg.RoundsPerEpisode),
	}
}

// Run executes the training loop and returns per-episode statistics.
func (t *Trainer) Run() []EpisodeStats {
	out := make([]EpisodeStats, 0, t.cfg.Episodes)
	for e := 0; e < t.cfg.Episodes; e++ {
		stats := t.runEpisode(e)
		out = append(out, stats)
		if t.OnEpisode != nil && !t.OnEpisode(stats) {
			break
		}
	}
	return out
}

// runEpisode plays K rounds, optimizing every |I| rounds (Algorithm 1,
// lines 4–14).
func (t *Trainer) runEpisode(episode int) EpisodeStats {
	obs := t.env.Reset()
	t.buf.Reset()

	var ret float64
	var lastUpdate UpdateStats
	sinceUpdate := 0
	for k := 0; k < t.cfg.RoundsPerEpisode; k++ {
		raw, envAct, logP, value := t.agent.SelectAction(obs)
		next, reward, done := t.env.Step(envAct)
		terminal := done || k == t.cfg.RoundsPerEpisode-1
		t.buf.Add(obs, raw, logP, reward, value, terminal)
		ret += reward
		obs = next
		sinceUpdate++

		if sinceUpdate >= t.cfg.UpdateEvery || terminal {
			bootstrap := 0.0
			if !terminal {
				bootstrap = t.agent.Value(obs)
			}
			t.buf.ComputeGAE(t.agent.cfg.Gamma, t.agent.cfg.Lambda, bootstrap)
			lastUpdate = t.agent.Update(t.buf)
			sinceUpdate = 0
		}
		if done {
			break
		}
	}
	return EpisodeStats{
		Episode:     episode,
		Return:      ret,
		MeanReward:  ret / float64(t.cfg.RoundsPerEpisode),
		FinalUpdate: lastUpdate,
	}
}
