package rl

import "fmt"

// StreamCollector is the online-learning counterpart of the VecCollector:
// instead of driving an environment itself, it accepts externally
// produced transitions — one per live round of whatever system hosts the
// agent (the simulator's pricing rounds, in this repository) — and turns
// them into PPO optimization phases. Transitions accumulate in the
// arena-backed Rollout in exactly the order they are added; whenever
// UpdateEvery transitions have been staged since the last phase, the
// collector computes the segment's GAE (bootstrapping the value of the
// observation following the last transition, zero when that transition
// was terminal) and runs one agent Update — the paper's optimization
// phase, including its sharded gradient reduction (determinism contract
// rule 3) when the agent is configured with shards.
//
// Determinism (rule 5 of the contract): the collector adds no ordering of
// its own — callers feed transitions serially in stream order, every
// cross-row sum inside Update happens in the rule-1/rule-3 fixed-order
// kernels, and the collector consumes no RNG. A fixed transition stream
// therefore produces bit-identical weights for any shard count and any
// GOMAXPROCS.
//
// The collector is not safe for concurrent use; the producing loop owns
// it.
type StreamCollector struct {
	agent       *PPO
	buf         *Rollout
	updateEvery int

	since   int
	total   int
	updates int
	last    UpdateStats
}

// NewStreamCollector wires an agent to an external transition stream with
// an optimization phase every updateEvery transitions (the paper's |I|).
func NewStreamCollector(agent *PPO, updateEvery int) *StreamCollector {
	if agent == nil {
		panic("rl: StreamCollector needs an agent")
	}
	if updateEvery <= 0 {
		panic(fmt.Sprintf("rl: StreamCollector updateEvery=%d must be positive", updateEvery))
	}
	return &StreamCollector{
		agent:       agent,
		buf:         NewRollout(updateEvery),
		updateEvery: updateEvery,
	}
}

// Add stages one externally produced transition: the observation the
// action was selected at, the raw normalized action sample and its
// log-probability and value estimate (as returned by SelectAction and
// friends), the observed reward, whether the stream hit an episode
// boundary, and the observation following the transition. obs, rawAction,
// and nextObs are copied; callers may reuse their buffers.
//
// When the staged segment reaches UpdateEvery transitions, Add runs one
// PPO optimization phase over it — GAE first, bootstrapping
// V(nextObs) unless done — discards the consumed segment (PPO is
// on-policy), and returns the phase's statistics with ran == true.
func (c *StreamCollector) Add(obs, rawAction []float64, logProb, reward, value float64, done bool, nextObs []float64) (stats UpdateStats, ran bool) {
	c.buf.Add(obs, rawAction, logProb, reward, value, done)
	c.since++
	c.total++
	if c.since < c.updateEvery {
		return UpdateStats{}, false
	}
	return c.update(done, nextObs), true
}

// Flush runs an optimization phase over a partial staged segment — e.g.
// at the end of a simulation whose round count does not divide
// UpdateEvery. It is a no-op when nothing is staged. nextObs and done
// carry the bootstrap exactly as in Add.
func (c *StreamCollector) Flush(done bool, nextObs []float64) (stats UpdateStats, ran bool) {
	if c.since == 0 {
		return UpdateStats{}, false
	}
	return c.update(done, nextObs), true
}

// update closes the staged segment with its GAE pass and one agent
// Update, then rewinds the buffer arenas for the next segment.
func (c *StreamCollector) update(done bool, nextObs []float64) UpdateStats {
	bootstrap := 0.0
	if !done {
		bootstrap = c.agent.Value(nextObs)
	}
	c.buf.ComputeGAE(c.agent.cfg.Gamma, c.agent.cfg.Lambda, bootstrap)
	c.last = c.agent.Update(c.buf)
	c.buf.Reset()
	c.since = 0
	c.updates++
	return c.last
}

// Snapshot returns the stream counters — transitions ever added and
// optimization phases run — for a checkpoint's pricer section. A
// snapshot is only valid at a phase boundary: mid-segment transitions
// live in the on-policy rollout buffer, are discarded by the next
// update, and cannot be replayed on restore, so Snapshot errors while
// transitions are pending.
func (c *StreamCollector) Snapshot() (total, updates int, err error) {
	if c.since != 0 {
		return 0, 0, fmt.Errorf("rl: stream collector has %d pending transitions; snapshot only at a phase boundary", c.since)
	}
	return c.total, c.updates, nil
}

// Restore overwrites the stream counters with checkpointed values, so a
// collector rebuilt from a checkpoint reports the same Total/Updates
// the snapshotted one did. The collector must be fresh (no transitions
// staged or counted) and the counters must be consistent: every
// optimization phase consumes at least one transition.
func (c *StreamCollector) Restore(total, updates int) error {
	if c.since != 0 || c.total != 0 || c.updates != 0 {
		return fmt.Errorf("rl: restoring stream counters into a used collector (since=%d total=%d updates=%d)", c.since, c.total, c.updates)
	}
	if total < 0 || updates < 0 || updates > total {
		return fmt.Errorf("rl: restoring impossible stream counters (total=%d updates=%d)", total, updates)
	}
	c.total = total
	c.updates = updates
	return nil
}

// Pending returns the number of transitions staged since the last
// optimization phase.
func (c *StreamCollector) Pending() int { return c.since }

// UpdateEvery returns the configured optimization cadence.
func (c *StreamCollector) UpdateEvery() int { return c.updateEvery }

// Total returns the number of transitions ever added.
func (c *StreamCollector) Total() int { return c.total }

// Updates returns the number of optimization phases run.
func (c *StreamCollector) Updates() int { return c.updates }

// LastStats returns the statistics of the most recent optimization phase
// (zero before the first).
func (c *StreamCollector) LastStats() UpdateStats { return c.last }
