package rl

import (
	"fmt"
	"runtime"
	"sync"

	"vtmig/internal/mat"
)

// This file implements vectorized rollout collection: a VecCollector
// steps W independently seeded environment instances in lockstep, batches
// the policy evaluation of every live environment through the batched
// nn/mat kernels, and fans only the environment stepping — strictly
// per-env work — out across workers. Per-env transitions are staged in
// per-env buffers and merged into the shared Rollout in fixed env-index
// order, each env's segment receiving its own GAE pass and bootstrap.
//
// Determinism (rule 4 of the contract, see doc.go): the policy forward
// pass is one batched call over the live envs in ascending env order (its
// rows are bit-identical to per-row serial calls, rule 1); action sampling
// consumes the single learner RNG serially, env-ascending; environment
// streams are independently seeded and each instance is touched by exactly
// one goroutine per round, with results written to per-env slots; and the
// merge replays the staged transitions env-ascending. No cross-env value
// is ever reduced in worker order, so ANY worker count — and any
// GOMAXPROCS — produces a rollout, and therefore a training run,
// bit-identical to serial (workers=1) collection. With a single
// environment the collector reproduces the serial collect loop
// (SelectAction / pre-step-obs Add / Step) bit for bit.

const (
	// autoCollectWorkerCap bounds the automatic worker count: environment
	// stepping is medium-grained (one Stackelberg evaluation per env per
	// round in the paper's POMDP), so a handful of workers saturates the
	// fan-out before scheduling overhead dominates.
	autoCollectWorkerCap = 8
)

// VecCollector drives lockstep episode collection over a VecEnv with a
// shared PPO policy. It is created by the Trainer (or directly, for
// benchmarks) and reused across episode blocks; steady-state collection is
// allocation-free after the first block has grown the scratch.
type VecCollector struct {
	vec     VecEnv
	agent   *PPO
	workers int

	// per-env state, sized to NumEnvs.
	//
	// obs[e] is env e's observation slice: the slice returned by the
	// env's last Reset/Step, which in-place environments (the paper's
	// POMDP, whose Step rewrites its history window) mutate under us.
	// Each round therefore snapshots the live observations into obsB
	// BEFORE the policy pass and the step; the staged transition records
	// that pre-step copy — the s_t of Algorithm 1's (s_t, a_t, r_t,
	// s_{t+1}) — never the slice the step just mutated. (The pre-PR-5
	// collector inherited the seed's aliasing quirk and stored the
	// post-step contents; see the ROADMAP history.)
	obs     [][]float64
	staged  []*Rollout // per-env staging buffers, merged env-ascending
	returns []float64  // per-env accumulated episode return
	done    []bool     // per-env episode-finished flag

	active int   // envs participating in the current block
	live   []int // ascending indices of envs still running

	// lockstep-round scratch: row r of each matrix belongs to live[r]
	obsB, rawB, envActB mat.Matrix
	logP, values        []float64
	forceTerminal       bool

	// bootstrap scratch for Merge
	bootObs  mat.Matrix
	bootVals []float64
	bootEnvs []int

	// step fan-out machinery, mirroring the sharded-update workers:
	// pre-bound goroutine bodies so the per-round spawn allocates nothing.
	stepWorkers []*stepWorker
	stepWG      sync.WaitGroup
}

// stepWorker steps a contiguous range of the live slice.
type stepWorker struct {
	c      *VecCollector
	spawn  func()
	lo, hi int // range [lo, hi) into c.live for the current round
}

// newStepWorker builds a worker bound to the collector.
func newStepWorker(c *VecCollector) *stepWorker {
	w := &stepWorker{c: c}
	w.spawn = func() {
		defer c.stepWG.Done()
		w.work()
	}
	return w
}

// NewVecCollector wires a vectorized environment and a PPO learner
// together. workers is the number of goroutines stepping environments per
// lockstep round: 0 selects automatically (min(GOMAXPROCS, NumEnvs,
// a small cap)), 1 steps serially, and any value produces bit-identical
// results.
func NewVecCollector(vec VecEnv, agent *PPO, workers int) *VecCollector {
	if workers < 0 {
		panic(fmt.Sprintf("rl: VecCollector workers=%d must be non-negative", workers))
	}
	if vec.ObsDim() != agent.net.ObsDim() || vec.ActDim() != agent.net.ActDim() {
		panic(fmt.Sprintf("rl: VecCollector env dims (%d, %d) do not match agent (%d, %d)",
			vec.ObsDim(), vec.ActDim(), agent.net.ObsDim(), agent.net.ActDim()))
	}
	n := vec.NumEnvs()
	c := &VecCollector{
		vec:     vec,
		agent:   agent,
		workers: workers,
		obs:     make([][]float64, n),
		staged:  make([]*Rollout, n),
		returns: make([]float64, n),
		done:    make([]bool, n),
		live:    make([]int, 0, n),
		logP:    make([]float64, n),
		values:  make([]float64, n),

		bootVals: make([]float64, n),
		bootEnvs: make([]int, 0, n),
	}
	for e := range c.staged {
		c.staged[e] = NewRollout(0)
	}
	return c
}

// NumEnvs returns the size of the underlying VecEnv.
func (c *VecCollector) NumEnvs() int { return c.vec.NumEnvs() }

// Begin starts a new episode block over the first active environments:
// every participating env is Reset (in env-index order, so per-env RNG
// consumption is reproducible), staging buffers are rewound, and returns
// are zeroed.
func (c *VecCollector) Begin(active int) {
	if active < 1 || active > c.vec.NumEnvs() {
		panic(fmt.Sprintf("rl: Begin(%d) out of range [1, %d]", active, c.vec.NumEnvs()))
	}
	c.active = active
	c.live = c.live[:0]
	for e := 0; e < active; e++ {
		c.obs[e] = c.vec.EnvAt(e).Reset()
		c.staged[e].Reset()
		c.returns[e] = 0
		c.done[e] = false
		c.live = append(c.live, e)
	}
}

// Live returns the number of environments still running in the current
// block.
func (c *VecCollector) Live() int { return len(c.live) }

// Returns returns the per-env accumulated episode returns of the current
// block (indexed by env, length NumEnvs; only the first Begin(active)
// entries are meaningful). The slice is collector-owned.
func (c *VecCollector) Returns() []float64 { return c.returns }

// effectiveWorkers resolves the worker count for a round over the given
// number of live envs. The result never exceeds live, so every worker has
// at least one env.
func (c *VecCollector) effectiveWorkers(live int) int {
	w := c.workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
		if w > autoCollectWorkerCap {
			w = autoCollectWorkerCap
		}
	}
	if w > live {
		w = live
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Step advances every live environment by one lockstep round: one batched
// policy evaluation over the live observations (env-ascending), serial
// env-ascending action sampling from the learner's RNG, and a parallel
// env-stepping fan-out. Transitions are staged per env. forceTerminal
// marks every staged transition terminal (the trainer sets it on the last
// round of an episode, matching the serial loop's done || k == K-1).
// It returns the number of transitions staged this round.
func (c *VecCollector) Step(forceTerminal bool) int {
	live := len(c.live)
	if live == 0 {
		return 0
	}
	obsDim := c.vec.ObsDim()
	c.obsB.Resize(live, obsDim)
	for r, e := range c.live {
		copy(c.obsB.Row(r), c.obs[e])
	}
	c.agent.SelectActionBatch(&c.obsB, &c.rawB, &c.envActB, c.logP[:live], c.values[:live])

	// Fan the strictly per-env stepping out across workers over a fixed
	// contiguous partition of the live slice. Each env writes only its own
	// slots, so the result is independent of the partition, the worker
	// count, and scheduling.
	c.forceTerminal = forceTerminal
	workers := c.effectiveWorkers(live)
	if workers == 1 {
		w := c.workerAt(0)
		w.lo, w.hi = 0, live
		w.work()
	} else {
		for s := 0; s < workers; s++ {
			w := c.workerAt(s)
			w.lo, w.hi = s*live/workers, (s+1)*live/workers
		}
		c.stepWG.Add(workers - 1)
		for s := 1; s < workers; s++ {
			go c.stepWorkers[s].spawn()
		}
		c.stepWorkers[0].work()
		c.stepWG.Wait()
	}

	// Compact the live slice in ascending order, dropping finished envs.
	kept := c.live[:0]
	for _, e := range c.live {
		if !c.done[e] {
			kept = append(kept, e)
		}
	}
	c.live = kept
	return live
}

// workerAt returns step worker s, growing the pool on first use.
func (c *VecCollector) workerAt(s int) *stepWorker {
	for len(c.stepWorkers) <= s {
		c.stepWorkers = append(c.stepWorkers, newStepWorker(c))
	}
	return c.stepWorkers[s]
}

// work steps the worker's env range for the current round: apply the
// sampled action, stage the transition in the env's private buffer, and
// take over the returned observation slice. Strictly per-env state is
// touched, so workers never contend (obsB is only read during the
// fan-out, and each staged buffer belongs to one env). The Add records
// the pre-step observation copy from obsB — the observation the action
// was selected at — so the stored s_t is correct even for environments
// that rewrite their observation slice in place during Step.
func (w *stepWorker) work() {
	c := w.c
	for r := w.lo; r < w.hi; r++ {
		e := c.live[r]
		next, reward, done := c.vec.EnvAt(e).Step(c.envActB.Row(r))
		terminal := done || c.forceTerminal
		c.staged[e].Add(c.obsB.Row(r), c.rawB.Row(r), c.logP[r], reward, c.values[r], terminal)
		c.returns[e] += reward
		c.done[e] = done
		c.obs[e] = next
	}
}

// Merge flushes every staged per-env segment into buf in fixed env-index
// order and computes each segment's GAE with its own bootstrap: zero when
// the segment ends terminal, V(current obs) otherwise — exactly the
// serial loop's `if !terminal { bootstrap = V(next) }`. Bootstrap values
// are evaluated in one batched critic pass over the non-terminal envs in
// ascending order. Staging buffers are rewound for the next segment.
func (c *VecCollector) Merge(buf *Rollout) {
	// Gather the envs that need a bootstrap value (segment does not end
	// terminal), ascending.
	c.bootEnvs = c.bootEnvs[:0]
	for e := 0; e < c.active; e++ {
		st := c.staged[e]
		if st.Len() == 0 {
			continue
		}
		if !st.steps[st.Len()-1].Done {
			c.bootEnvs = append(c.bootEnvs, e)
		}
	}
	if len(c.bootEnvs) > 0 {
		c.bootObs.Resize(len(c.bootEnvs), c.vec.ObsDim())
		for r, e := range c.bootEnvs {
			copy(c.bootObs.Row(r), c.obs[e])
		}
		c.agent.Values(&c.bootObs, c.bootVals[:len(c.bootEnvs)])
	}

	gamma, lambda := c.agent.cfg.Gamma, c.agent.cfg.Lambda
	bi := 0
	for e := 0; e < c.active; e++ {
		st := c.staged[e]
		if st.Len() == 0 {
			continue
		}
		bootstrap := 0.0
		if bi < len(c.bootEnvs) && c.bootEnvs[bi] == e {
			bootstrap = c.bootVals[bi]
			bi++
		}
		buf.AppendFrom(st)
		buf.ComputeGAE(gamma, lambda, bootstrap)
		st.Reset()
	}
}
