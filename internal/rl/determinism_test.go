package rl

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"vtmig/internal/nn"
)

// The tests in this file pin the third rule of the determinism contract:
// sharded PPO updates produce weights bit-identical to the serial pass
// for every shard count, regardless of GOMAXPROCS. "Bit-identical" is
// meant literally — comparisons go through math.Float64bits, not a
// tolerance.

// collectRollout fills buf with one episode of experience from env using
// agent's stochastic policy, then computes advantages. Both agents under
// comparison run this with identically seeded RNGs, so any weight
// divergence compounds into diverging rollouts and is caught.
func collectRollout(agent *PPO, env *allocEnv, buf *Rollout, rounds int) {
	buf.Reset()
	obs := env.Reset()
	for k := 0; k < rounds; k++ {
		raw, envAct, logP, value := agent.SelectAction(obs)
		next, reward, done := env.Step(envAct)
		buf.Add(obs, raw, logP, reward, value, done)
		obs = next
		if done {
			obs = env.Reset()
		}
	}
	buf.ComputeGAE(agent.cfg.Gamma, agent.cfg.Lambda, 0)
}

// paramsEqualBits reports the first parameter element where a and b
// differ bitwise, or ok.
func paramsEqualBits(a, b []*nn.Param) (string, bool) {
	if len(a) != len(b) {
		return fmt.Sprintf("param count %d vs %d", len(a), len(b)), false
	}
	for i := range a {
		for j := range a[i].Value {
			if math.Float64bits(a[i].Value[j]) != math.Float64bits(b[i].Value[j]) {
				return fmt.Sprintf("param %q element %d: %x vs %x (%v vs %v)",
					a[i].Name, j,
					math.Float64bits(a[i].Value[j]), math.Float64bits(b[i].Value[j]),
					a[i].Value[j], b[i].Value[j]), false
			}
		}
	}
	return "", true
}

// runTraining builds an agent with the given shard count and runs cycles
// of collect+update on a fresh deterministic environment, returning the
// agent and the accumulated update statistics.
func runTraining(cfg PPOConfig, obsDim, cycles, rounds int) (*PPO, []UpdateStats) {
	env := newAllocEnv(obsDim)
	agent := NewPPO(obsDim, 1, []float64{0}, []float64{1}, cfg)
	buf := NewRollout(rounds)
	stats := make([]UpdateStats, 0, cycles)
	for c := 0; c < cycles; c++ {
		collectRollout(agent, env, buf, rounds)
		stats = append(stats, agent.Update(buf))
	}
	return agent, stats
}

// TestShardedUpdateBitIdentical pins shard-count × GOMAXPROCS
// combinations: every cell must reproduce the serial reference weights
// and statistics exactly.
func TestShardedUpdateBitIdentical(t *testing.T) {
	const (
		obsDim = 12
		cycles = 3
		rounds = 60
	)
	baseCfg := DefaultPPOConfig()
	baseCfg.Seed = 7
	baseCfg.Shards = 1
	serial, serialStats := runTraining(baseCfg, obsDim, cycles, rounds)

	for _, gmp := range []int{1, 2, 4} {
		for _, shards := range []int{1, 2, 4, 7} {
			t.Run(fmt.Sprintf("gomaxprocs=%d/shards=%d", gmp, shards), func(t *testing.T) {
				prev := runtime.GOMAXPROCS(gmp)
				defer runtime.GOMAXPROCS(prev)

				cfg := baseCfg
				cfg.Shards = shards
				agent, stats := runTraining(cfg, obsDim, cycles, rounds)
				if diff, ok := paramsEqualBits(serial.Params(), agent.Params()); !ok {
					t.Fatalf("weights diverged from serial pass: %s", diff)
				}
				for c := range stats {
					if stats[c] != serialStats[c] {
						t.Fatalf("cycle %d stats diverged: serial %+v, sharded %+v",
							c, serialStats[c], stats[c])
					}
				}
			})
		}
	}
}

// TestShardedUpdateBitIdenticalRandomizedNetworks is the property form:
// random network shapes, minibatch sizes, epoch modes, and shard counts
// must all reproduce the serial weights bitwise.
func TestShardedUpdateBitIdenticalRandomizedNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 12; trial++ {
		obsDim := 3 + rng.Intn(10)
		hidden := make([]int, 1+rng.Intn(2))
		for i := range hidden {
			hidden[i] = 8 + rng.Intn(25)
		}
		cfg := DefaultPPOConfig()
		cfg.Hidden = hidden
		cfg.Epochs = 2 + rng.Intn(3)
		cfg.MiniBatch = 5 + rng.Intn(60)
		cfg.FullEpochs = rng.Intn(2) == 0
		cfg.Seed = int64(100 + trial)
		rounds := 20 + rng.Intn(60)
		shards := 2 + rng.Intn(7)

		cfg.Shards = 1
		serial, _ := runTraining(cfg, obsDim, 2, rounds)
		cfg.Shards = shards
		sharded, _ := runTraining(cfg, obsDim, 2, rounds)

		if diff, ok := paramsEqualBits(serial.Params(), sharded.Params()); !ok {
			t.Fatalf("trial %d (obs=%d hidden=%v minibatch=%d full=%v rounds=%d shards=%d): %s",
				trial, obsDim, hidden, cfg.MiniBatch, cfg.FullEpochs, rounds, shards, diff)
		}
	}
}

// TestAutoShardsBitIdentical checks the automatic mode (Shards = 0)
// against the serial reference: whatever shard count auto resolves to on
// the current GOMAXPROCS, the weights must not change.
func TestAutoShardsBitIdentical(t *testing.T) {
	const obsDim = 8
	cfg := DefaultPPOConfig()
	cfg.Seed = 11
	cfg.MiniBatch = 64 // above autoShardMinRows so auto mode actually shards
	cfg.Shards = 1
	serial, _ := runTraining(cfg, obsDim, 2, 80)

	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	cfg.Shards = 0
	auto, _ := runTraining(cfg, obsDim, 2, 80)
	if diff, ok := paramsEqualBits(serial.Params(), auto.Params()); !ok {
		t.Fatalf("auto-shard weights diverged from serial pass: %s", diff)
	}
}

// TestEffectiveShards pins the shard-resolution rules.
func TestEffectiveShards(t *testing.T) {
	mk := func(shards int) *PPO {
		cfg := DefaultPPOConfig()
		cfg.Shards = shards
		return NewPPO(4, 1, []float64{0}, []float64{1}, cfg)
	}
	if got := mk(1).effectiveShards(100); got != 1 {
		t.Errorf("explicit serial: got %d shards, want 1", got)
	}
	if got := mk(7).effectiveShards(100); got != 7 {
		t.Errorf("explicit 7: got %d shards, want 7", got)
	}
	if got := mk(7).effectiveShards(3); got != 3 {
		t.Errorf("7 shards over 3 rows: got %d, want 3 (non-empty shards)", got)
	}
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	if got := mk(0).effectiveShards(autoShardMinRows - 1); got != 1 {
		t.Errorf("auto below min rows: got %d shards, want 1", got)
	}
	if got := mk(0).effectiveShards(100); got != autoShardCap {
		t.Errorf("auto with GOMAXPROCS=8: got %d shards, want cap %d", got, autoShardCap)
	}
}
