// Package rsu models the edge servers inside RoadSide Units: multi-
// dimensional resource capacities (CPU, GPU, memory, storage), Vehicular
// Twin placement with admission control, and the edge-assisted remote
// rendering load of Section II (VT update/rendering tasks offloaded to
// the serving RSU).
//
// The placement cluster gives the simulator a destination-side admission
// check: a migration can only complete when the destination RSU has room
// to host the twin.
package rsu

import (
	"fmt"
	"sort"
)

// Resources is a multi-dimensional resource vector.
type Resources struct {
	// CPU and GPU are in abstract compute units.
	CPU, GPU float64
	// MemoryGB and StorageGB are in gigabytes.
	MemoryGB, StorageGB float64
}

// Add returns r + other.
func (r Resources) Add(other Resources) Resources {
	return Resources{
		CPU:       r.CPU + other.CPU,
		GPU:       r.GPU + other.GPU,
		MemoryGB:  r.MemoryGB + other.MemoryGB,
		StorageGB: r.StorageGB + other.StorageGB,
	}
}

// Sub returns r - other.
func (r Resources) Sub(other Resources) Resources {
	return Resources{
		CPU:       r.CPU - other.CPU,
		GPU:       r.GPU - other.GPU,
		MemoryGB:  r.MemoryGB - other.MemoryGB,
		StorageGB: r.StorageGB - other.StorageGB,
	}
}

// FitsIn reports whether r fits within capacity in every dimension.
func (r Resources) FitsIn(capacity Resources) bool {
	return r.CPU <= capacity.CPU &&
		r.GPU <= capacity.GPU &&
		r.MemoryGB <= capacity.MemoryGB &&
		r.StorageGB <= capacity.StorageGB
}

// NonNegative reports whether every dimension is >= 0.
func (r Resources) NonNegative() bool {
	return r.CPU >= 0 && r.GPU >= 0 && r.MemoryGB >= 0 && r.StorageGB >= 0
}

// Validate reports whether the vector is a valid requirement/capacity.
func (r Resources) Validate() error {
	if !r.NonNegative() {
		return fmt.Errorf("rsu: resources must be non-negative, got %+v", r)
	}
	return nil
}

// Server is one RSU edge server hosting Vehicular Twins.
type Server struct {
	// ID is unique within a cluster.
	ID int
	// Capacity is the server's total resources.
	Capacity Resources

	used  Resources
	twins map[int]Resources
}

// NewServer builds an empty server.
func NewServer(id int, capacity Resources) (*Server, error) {
	if err := capacity.Validate(); err != nil {
		return nil, err
	}
	return &Server{ID: id, Capacity: capacity, twins: make(map[int]Resources)}, nil
}

// Used returns the currently allocated resources.
func (s *Server) Used() Resources { return s.used }

// Free returns the remaining headroom.
func (s *Server) Free() Resources { return s.Capacity.Sub(s.used) }

// Hosts reports whether the server hosts the twin.
func (s *Server) Hosts(twinID int) bool {
	_, ok := s.twins[twinID]
	return ok
}

// TwinCount returns the number of hosted twins.
func (s *Server) TwinCount() int { return len(s.twins) }

// Deploy admits a twin with the given requirement.
func (s *Server) Deploy(twinID int, req Resources) error {
	if err := req.Validate(); err != nil {
		return err
	}
	if _, ok := s.twins[twinID]; ok {
		return fmt.Errorf("rsu: server %d already hosts twin %d", s.ID, twinID)
	}
	if !req.FitsIn(s.Free()) {
		return fmt.Errorf("rsu: server %d cannot fit twin %d: need %+v, free %+v", s.ID, twinID, req, s.Free())
	}
	s.twins[twinID] = req
	s.used = s.used.Add(req)
	return nil
}

// TryDeploy is Deploy without the error construction, under exactly the
// same admission checks. It exists for the simulator's attach path: an
// outage at fleet scale makes thousands of vehicles re-attach per tick,
// and building a rejection error for each dominated the allocations.
func (s *Server) TryDeploy(twinID int, req Resources) bool {
	if req.Validate() != nil {
		return false
	}
	if _, ok := s.twins[twinID]; ok {
		return false
	}
	if !req.FitsIn(s.Free()) {
		return false
	}
	s.twins[twinID] = req
	s.used = s.used.Add(req)
	return true
}

// Remove evicts a twin and returns its resources to the pool.
func (s *Server) Remove(twinID int) error {
	req, ok := s.twins[twinID]
	if !ok {
		return fmt.Errorf("rsu: server %d does not host twin %d", s.ID, twinID)
	}
	delete(s.twins, twinID)
	s.used = s.used.Sub(req)
	return nil
}

// CPUUtilization returns used/capacity CPU in [0, 1] (0 for zero
// capacity).
func (s *Server) CPUUtilization() float64 {
	if s.Capacity.CPU == 0 {
		return 0
	}
	return s.used.CPU / s.Capacity.CPU
}

// RenderingLatency models the edge-assisted remote-rendering delay of the
// hosted twins as an M/M/1 service: each hosted twin submits update tasks
// at taskRate (tasks/s) and one CPU unit serves serviceRatePerCPU
// (tasks/s). The expected sojourn time is 1/(μ−λ). It returns an error
// when the server is saturated (λ ≥ μ).
func (s *Server) RenderingLatency(taskRate, serviceRatePerCPU float64) (float64, error) {
	if taskRate <= 0 || serviceRatePerCPU <= 0 {
		return 0, fmt.Errorf("rsu: rates must be positive, got task=%g service=%g", taskRate, serviceRatePerCPU)
	}
	lambda := taskRate * float64(len(s.twins))
	mu := serviceRatePerCPU * s.Capacity.CPU
	if lambda >= mu {
		return 0, fmt.Errorf("rsu: server %d saturated: offered %g tasks/s, capacity %g tasks/s", s.ID, lambda, mu)
	}
	if lambda == 0 {
		return 1 / mu, nil
	}
	return 1 / (mu - lambda), nil
}

// PlacementStrategy selects a server for a new twin.
type PlacementStrategy int

// Supported strategies.
const (
	// PlaceFirstFit picks the lowest-ID server with room.
	PlaceFirstFit PlacementStrategy = iota + 1
	// PlaceLeastLoaded picks the server with the lowest CPU utilization
	// that has room.
	PlaceLeastLoaded
)

// Cluster is a set of RSU edge servers with a placement policy.
type Cluster struct {
	servers  []*Server
	strategy PlacementStrategy
	// location maps twin id -> server id.
	location map[int]int
}

// NewCluster builds a cluster over the servers.
func NewCluster(servers []*Server, strategy PlacementStrategy) (*Cluster, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("rsu: cluster needs at least one server")
	}
	switch strategy {
	case PlaceFirstFit, PlaceLeastLoaded:
	default:
		return nil, fmt.Errorf("rsu: unknown placement strategy %d", int(strategy))
	}
	seen := make(map[int]bool, len(servers))
	for _, s := range servers {
		if seen[s.ID] {
			return nil, fmt.Errorf("rsu: duplicate server id %d", s.ID)
		}
		seen[s.ID] = true
	}
	sorted := append([]*Server(nil), servers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	return &Cluster{servers: sorted, strategy: strategy, location: make(map[int]int)}, nil
}

// Servers returns the cluster's servers sorted by ID.
func (c *Cluster) Servers() []*Server { return c.servers }

// Locate returns the server hosting the twin, or -1.
func (c *Cluster) Locate(twinID int) int {
	if id, ok := c.location[twinID]; ok {
		return id
	}
	return -1
}

// Place deploys a new twin per the cluster strategy and returns the
// chosen server id.
func (c *Cluster) Place(twinID int, req Resources) (int, error) {
	if _, ok := c.location[twinID]; ok {
		return -1, fmt.Errorf("rsu: twin %d is already placed", twinID)
	}
	target := c.pick(req)
	if target == nil {
		return -1, fmt.Errorf("rsu: no server can fit twin %d (%+v)", twinID, req)
	}
	if err := target.Deploy(twinID, req); err != nil {
		return -1, err
	}
	c.location[twinID] = target.ID
	return target.ID, nil
}

// TryPlace is Place without the error construction: it deploys per the
// cluster strategy under exactly Place's admission checks and reports
// the chosen server and whether placement succeeded.
func (c *Cluster) TryPlace(twinID int, req Resources) (int, bool) {
	if _, ok := c.location[twinID]; ok {
		return -1, false
	}
	target := c.pick(req)
	if target == nil || !target.TryDeploy(twinID, req) {
		return -1, false
	}
	c.location[twinID] = target.ID
	return target.ID, true
}

// pick applies the placement strategy.
func (c *Cluster) pick(req Resources) *Server {
	var best *Server
	for _, s := range c.servers {
		if !req.FitsIn(s.Free()) {
			continue
		}
		switch c.strategy {
		case PlaceFirstFit:
			return s
		case PlaceLeastLoaded:
			if best == nil || s.CPUUtilization() < best.CPUUtilization() {
				best = s
			}
		}
	}
	return best
}

// PlaceOn deploys a new twin on a specific server (e.g. the RSU currently
// serving the vehicle), bypassing the placement strategy.
func (c *Cluster) PlaceOn(twinID, serverID int, req Resources) error {
	if _, ok := c.location[twinID]; ok {
		return fmt.Errorf("rsu: twin %d is already placed", twinID)
	}
	target := c.serverByID(serverID)
	if target == nil {
		return fmt.Errorf("rsu: unknown server %d", serverID)
	}
	if err := target.Deploy(twinID, req); err != nil {
		return err
	}
	c.location[twinID] = serverID
	return nil
}

// TryPlaceOn is PlaceOn without the error construction, under exactly
// the same admission checks.
func (c *Cluster) TryPlaceOn(twinID, serverID int, req Resources) bool {
	if _, ok := c.location[twinID]; ok {
		return false
	}
	target := c.serverByID(serverID)
	if target == nil || !target.TryDeploy(twinID, req) {
		return false
	}
	c.location[twinID] = serverID
	return true
}

// MigrateTwin moves a placed twin to a specific destination server,
// deploying at the destination before releasing the source (the pre-copy
// discipline: both copies exist during migration). It fails when the
// destination lacks headroom.
func (c *Cluster) MigrateTwin(twinID, destServerID int) error {
	srcID, ok := c.location[twinID]
	if !ok {
		return fmt.Errorf("rsu: twin %d is not placed", twinID)
	}
	if srcID == destServerID {
		return fmt.Errorf("rsu: twin %d is already on server %d", twinID, destServerID)
	}
	src := c.serverByID(srcID)
	dst := c.serverByID(destServerID)
	if dst == nil {
		return fmt.Errorf("rsu: unknown destination server %d", destServerID)
	}
	req := src.twins[twinID]
	if err := dst.Deploy(twinID, req); err != nil {
		return fmt.Errorf("rsu: migrating twin %d: %w", twinID, err)
	}
	if err := src.Remove(twinID); err != nil {
		// Roll back the destination copy to keep accounting consistent.
		_ = dst.Remove(twinID)
		return fmt.Errorf("rsu: migrating twin %d: %w", twinID, err)
	}
	c.location[twinID] = destServerID
	return nil
}

// Evict removes a twin from the cluster entirely.
func (c *Cluster) Evict(twinID int) error {
	srcID, ok := c.location[twinID]
	if !ok {
		return fmt.Errorf("rsu: twin %d is not placed", twinID)
	}
	if err := c.serverByID(srcID).Remove(twinID); err != nil {
		return err
	}
	delete(c.location, twinID)
	return nil
}

// serverByID looks up a server (nil when absent).
func (c *Cluster) serverByID(id int) *Server {
	for _, s := range c.servers {
		if s.ID == id {
			return s
		}
	}
	return nil
}

// TotalTwins returns the number of placed twins.
func (c *Cluster) TotalTwins() int { return len(c.location) }
