package rsu

import (
	"testing"
	"testing/quick"
)

func res(cpu, gpu, mem, sto float64) Resources {
	return Resources{CPU: cpu, GPU: gpu, MemoryGB: mem, StorageGB: sto}
}

func server(t *testing.T, id int, capacity Resources) *Server {
	t.Helper()
	s, err := NewServer(id, capacity)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return s
}

func TestResourcesArithmetic(t *testing.T) {
	a := res(1, 2, 3, 4)
	b := res(10, 20, 30, 40)
	sum := a.Add(b)
	if sum != res(11, 22, 33, 44) {
		t.Errorf("Add = %+v", sum)
	}
	if diff := b.Sub(a); diff != res(9, 18, 27, 36) {
		t.Errorf("Sub = %+v", diff)
	}
}

func TestFitsIn(t *testing.T) {
	capa := res(4, 2, 16, 100)
	tests := []struct {
		name string
		req  Resources
		want bool
	}{
		{"fits", res(1, 1, 8, 50), true},
		{"exact", capa, true},
		{"cpu over", res(5, 0, 0, 0), false},
		{"gpu over", res(0, 3, 0, 0), false},
		{"memory over", res(0, 0, 17, 0), false},
		{"storage over", res(0, 0, 0, 101), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.req.FitsIn(capa); got != tt.want {
				t.Errorf("FitsIn = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestResourceValidation(t *testing.T) {
	if err := res(-1, 0, 0, 0).Validate(); err == nil {
		t.Error("negative CPU must fail validation")
	}
	if _, err := NewServer(0, res(-1, 0, 0, 0)); err == nil {
		t.Error("negative capacity must fail")
	}
}

func TestDeployRemoveAccounting(t *testing.T) {
	s := server(t, 0, res(4, 2, 16, 100))
	if err := s.Deploy(1, res(2, 1, 8, 40)); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if !s.Hosts(1) || s.TwinCount() != 1 {
		t.Error("twin not hosted after Deploy")
	}
	if got := s.Free(); got != res(2, 1, 8, 60) {
		t.Errorf("Free = %+v", got)
	}
	if err := s.Remove(1); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if got := s.Used(); got != res(0, 0, 0, 0) {
		t.Errorf("Used after Remove = %+v", got)
	}
}

func TestDeployRejections(t *testing.T) {
	s := server(t, 0, res(4, 2, 16, 100))
	if err := s.Deploy(1, res(3, 1, 8, 40)); err != nil {
		t.Fatal(err)
	}
	if err := s.Deploy(1, res(1, 0, 0, 0)); err == nil {
		t.Error("duplicate deploy must fail")
	}
	if err := s.Deploy(2, res(2, 0, 0, 0)); err == nil {
		t.Error("over-capacity deploy must fail")
	}
	if err := s.Deploy(3, res(-1, 0, 0, 0)); err == nil {
		t.Error("negative requirement must fail")
	}
	if err := s.Remove(99); err == nil {
		t.Error("removing unknown twin must fail")
	}
}

func TestCPUUtilization(t *testing.T) {
	s := server(t, 0, res(4, 0, 16, 100))
	if got := s.CPUUtilization(); got != 0 {
		t.Errorf("empty utilization = %v", got)
	}
	if err := s.Deploy(1, res(1, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if got := s.CPUUtilization(); got != 0.25 {
		t.Errorf("utilization = %v, want 0.25", got)
	}
}

func TestRenderingLatency(t *testing.T) {
	s := server(t, 0, res(4, 0, 16, 100))
	// Empty server: latency = 1/μ = 1/(5·4).
	l, err := s.RenderingLatency(2, 5)
	if err != nil {
		t.Fatalf("RenderingLatency: %v", err)
	}
	if l != 0.05 {
		t.Errorf("idle latency = %v, want 0.05", l)
	}
	// 3 twins at 2 tasks/s: λ=6, μ=20 ⇒ 1/14.
	for i := 0; i < 3; i++ {
		if err := s.Deploy(i, res(1, 0, 1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	l, err = s.RenderingLatency(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1.0 / 14; l != want {
		t.Errorf("loaded latency = %v, want %v", l, want)
	}
}

func TestRenderingLatencySaturation(t *testing.T) {
	s := server(t, 0, res(1, 0, 16, 100))
	for i := 0; i < 3; i++ {
		if err := s.Deploy(i, res(0.2, 0, 1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	// λ = 3·2 = 6 ≥ μ = 5·1 ⇒ saturated.
	if _, err := s.RenderingLatency(2, 5); err == nil {
		t.Error("saturated server must error")
	}
	if _, err := s.RenderingLatency(0, 5); err == nil {
		t.Error("non-positive task rate must error")
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	s := server(t, 0, res(10, 0, 100, 1000))
	prev := 0.0
	for i := 0; i < 8; i++ {
		if err := s.Deploy(i, res(1, 0, 1, 1)); err != nil {
			t.Fatal(err)
		}
		l, err := s.RenderingLatency(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if l <= prev {
			t.Fatalf("latency must grow with load: %v after %v", l, prev)
		}
		prev = l
	}
}

func TestClusterValidation(t *testing.T) {
	s0 := server(t, 0, res(4, 2, 16, 100))
	if _, err := NewCluster(nil, PlaceFirstFit); err == nil {
		t.Error("empty cluster must fail")
	}
	if _, err := NewCluster([]*Server{s0}, PlacementStrategy(0)); err == nil {
		t.Error("unknown strategy must fail")
	}
	dup := server(t, 0, res(1, 1, 1, 1))
	if _, err := NewCluster([]*Server{s0, dup}, PlaceFirstFit); err == nil {
		t.Error("duplicate ids must fail")
	}
}

func TestFirstFitPlacement(t *testing.T) {
	a := server(t, 0, res(2, 2, 16, 100))
	b := server(t, 1, res(8, 8, 64, 400))
	c, err := NewCluster([]*Server{a, b}, PlaceFirstFit)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Place(1, res(1, 1, 1, 1))
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if id != 0 {
		t.Errorf("first fit placed on %d, want 0", id)
	}
	// Too big for server 0 -> goes to 1.
	id, err = c.Place(2, res(4, 4, 4, 4))
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if id != 1 {
		t.Errorf("oversize twin placed on %d, want 1", id)
	}
}

func TestLeastLoadedPlacement(t *testing.T) {
	a := server(t, 0, res(4, 4, 64, 400))
	b := server(t, 1, res(4, 4, 64, 400))
	c, err := NewCluster([]*Server{a, b}, PlaceLeastLoaded)
	if err != nil {
		t.Fatal(err)
	}
	// Twins must alternate between the equally sized servers.
	for i := 0; i < 4; i++ {
		if _, err := c.Place(i, res(1, 1, 1, 1)); err != nil {
			t.Fatalf("Place(%d): %v", i, err)
		}
	}
	if a.TwinCount() != 2 || b.TwinCount() != 2 {
		t.Errorf("least-loaded split = %d/%d, want 2/2", a.TwinCount(), b.TwinCount())
	}
}

func TestPlacementExhaustion(t *testing.T) {
	a := server(t, 0, res(1, 1, 1, 1))
	c, err := NewCluster([]*Server{a}, PlaceFirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place(1, res(1, 1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place(2, res(1, 1, 1, 1)); err == nil {
		t.Error("exhausted cluster must reject placement")
	}
	if _, err := c.Place(1, res(0.1, 0.1, 0.1, 0.1)); err == nil {
		t.Error("re-placing a placed twin must fail")
	}
}

func TestMigrateTwin(t *testing.T) {
	a := server(t, 0, res(4, 4, 64, 400))
	b := server(t, 1, res(4, 4, 64, 400))
	c, err := NewCluster([]*Server{a, b}, PlaceFirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place(7, res(2, 2, 8, 40)); err != nil {
		t.Fatal(err)
	}
	if err := c.MigrateTwin(7, 1); err != nil {
		t.Fatalf("MigrateTwin: %v", err)
	}
	if c.Locate(7) != 1 || !b.Hosts(7) || a.Hosts(7) {
		t.Error("twin not moved correctly")
	}
	if got := a.Used(); got != res(0, 0, 0, 0) {
		t.Errorf("source not released: %+v", got)
	}
}

func TestMigrateTwinErrors(t *testing.T) {
	a := server(t, 0, res(4, 4, 64, 400))
	b := server(t, 1, res(1, 1, 1, 1))
	c, err := NewCluster([]*Server{a, b}, PlaceFirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MigrateTwin(9, 1); err == nil {
		t.Error("migrating unplaced twin must fail")
	}
	if _, err := c.Place(7, res(2, 2, 8, 40)); err != nil {
		t.Fatal(err)
	}
	if err := c.MigrateTwin(7, 0); err == nil {
		t.Error("self-migration must fail")
	}
	if err := c.MigrateTwin(7, 99); err == nil {
		t.Error("unknown destination must fail")
	}
	// Destination too small: must fail and leave the source intact.
	if err := c.MigrateTwin(7, 1); err == nil {
		t.Error("over-capacity migration must fail")
	}
	if c.Locate(7) != 0 || !a.Hosts(7) {
		t.Error("failed migration corrupted placement")
	}
}

func TestEvict(t *testing.T) {
	a := server(t, 0, res(4, 4, 64, 400))
	c, err := NewCluster([]*Server{a}, PlaceFirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place(3, res(1, 1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Evict(3); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	if c.Locate(3) != -1 || c.TotalTwins() != 0 {
		t.Error("twin still tracked after Evict")
	}
	if err := c.Evict(3); err == nil {
		t.Error("double evict must fail")
	}
}

// Conservation property: under any sequence of place/migrate/evict, each
// server's used resources equal the sum of its hosted twins' requirements
// and never exceed capacity.
func TestClusterConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		a := &Server{ID: 0, Capacity: res(8, 8, 64, 400), twins: map[int]Resources{}}
		b := &Server{ID: 1, Capacity: res(8, 8, 64, 400), twins: map[int]Resources{}}
		c, err := NewCluster([]*Server{a, b}, PlaceLeastLoaded)
		if err != nil {
			return false
		}
		for i, op := range ops {
			twin := i % 6
			switch op % 3 {
			case 0:
				_, _ = c.Place(twin, res(float64(op%4)+0.5, 1, 2, 8))
			case 1:
				_ = c.MigrateTwin(twin, int(op)%2)
			case 2:
				_ = c.Evict(twin)
			}
			for _, s := range c.Servers() {
				var sum Resources
				for _, req := range s.twins {
					sum = sum.Add(req)
				}
				if sum != s.used || !s.used.FitsIn(s.Capacity) || !s.Free().NonNegative() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPlaceOn(t *testing.T) {
	a := server(t, 0, res(4, 4, 64, 400))
	b := server(t, 1, res(4, 4, 64, 400))
	c, err := NewCluster([]*Server{a, b}, PlaceLeastLoaded)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PlaceOn(5, 1, res(1, 1, 1, 1)); err != nil {
		t.Fatalf("PlaceOn: %v", err)
	}
	if c.Locate(5) != 1 || !b.Hosts(5) {
		t.Error("twin not on requested server")
	}
	if err := c.PlaceOn(5, 0, res(1, 1, 1, 1)); err == nil {
		t.Error("re-placing must fail")
	}
	if err := c.PlaceOn(6, 99, res(1, 1, 1, 1)); err == nil {
		t.Error("unknown server must fail")
	}
	full := server(t, 2, res(0.5, 0.5, 0.5, 0.5))
	c2, err := NewCluster([]*Server{full}, PlaceFirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.PlaceOn(7, 2, res(1, 1, 1, 1)); err == nil {
		t.Error("over-capacity PlaceOn must fail")
	}
}
