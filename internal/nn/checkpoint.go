package nn

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"vtmig/internal/mathx"
)

// CheckpointVersion is the current checkpoint format version. Version 1
// introduced the full training state (optimizer moments, RNG stream
// positions, environment streams, training metadata); version 2 adds the
// directly captured RNG generator state (RNGState.State) and the online
// pricer section (Pricer), plus the binary encoding (SaveBinary). Version
// 0 files — the historical params-only JSON — still load, but can only
// warm-start weights, not resume training; version 1 files load and
// resume exactly as before (their RNG streams restore by replay).
const CheckpointVersion = 2

// Checkpoint is a versioned, serializable snapshot of a training state.
// The parameter values are always present; the remaining sections are
// optional and carried only by full training checkpoints:
//
//   - Opt holds the per-parameter optimizer state (Adam first/second
//     moments and the global step count) so a restored run applies the
//     exact updates a continued run would.
//   - RNG is the policy RNG stream position: a (seed, calls) pair plus —
//     in version 2 checkpoints of streams at least mathx.StateLen draws
//     old — the directly captured generator state, restored in constant
//     time (mathx.NewCountingSourceFromState); without the state the
//     stream is replayed (mathx.NewCountingSourceAt).
//   - Envs are the cross-episode states of the training-environment
//     streams, in fixed env-index order.
//   - Meta records the episode count at the snapshot and a fingerprint of
//     the training configuration, checked on resume.
//   - Pricer is the simulator-embedded online pricer's deployment state —
//     the encoder belief window, current observation, running-best
//     utility, and stream-collector counters (version 2;
//     sim.OnlinePricer.Snapshot writes it).
//
// A checkpoint with all sections restores training bit-identically:
// train K episodes, snapshot, restore, train K more is the same run as
// training 2K straight (determinism contract rule 6).
type Checkpoint struct {
	// Version is the format version (CheckpointVersion when written by
	// this code; 0 in legacy params-only files).
	Version int `json:"version"`
	// Params maps parameter names to their flat values.
	Params map[string][]float64 `json:"params"`
	// Opt is the optimizer state (nil in weights-only checkpoints).
	Opt *OptState `json:"opt,omitempty"`
	// RNG is the policy RNG stream position (nil in weights-only
	// checkpoints).
	RNG *RNGState `json:"rng,omitempty"`
	// Envs are the training-environment stream states, env-index
	// ascending (empty for learners without trainer-owned environments,
	// e.g. the simulator's online pricer).
	Envs []EnvState `json:"envs,omitempty"`
	// Meta is the training metadata (nil in weights-only checkpoints).
	Meta *TrainMeta `json:"meta,omitempty"`
	// Pricer is the online pricer's deployment state (nil outside pricer
	// checkpoints; version 2).
	Pricer *PricerState `json:"pricer,omitempty"`
}

// OptState is the serialized optimizer state of a checkpoint.
type OptState struct {
	// Algo names the optimizer; only "adam" is defined.
	Algo string `json:"algo"`
	// Step is the global step count t (drives Adam's bias correction).
	Step int `json:"step"`
	// M and V map parameter names to the first and second moment
	// estimates, same length as the parameter.
	M map[string][]float64 `json:"m"`
	V map[string][]float64 `json:"v"`
}

// RNGState is a checkpointable RNG stream position: the stream's seed and
// the number of generator advances consumed so far (see
// mathx.CountingSource). Version 2 checkpoints additionally carry the
// directly captured generator state — the stream's last mathx.StateLen
// raw outputs (mathx.CountingSource.StateSnapshot) — so restore costs
// O(StateLen) instead of replaying calls draws; State is empty for
// streams younger than StateLen draws, where replay is just as fast.
type RNGState struct {
	Seed  int64    `json:"seed"`
	Calls uint64   `json:"calls"`
	State []uint64 `json:"state,omitempty"`
}

// EnvState is the cross-episode state of one training-environment stream
// at an episode boundary: its RNG position plus the running-best
// statistic behind the paper's binary reward (Eq. 12), which persists
// across episodes.
type EnvState struct {
	// RNG is the environment's RNG stream position.
	RNG RNGState `json:"rng"`
	// Best is the running-best leader utility; meaningful only when
	// BestSet (JSON cannot carry the -Inf that means "nothing observed
	// yet").
	Best float64 `json:"best"`
	// BestSet reports whether Best holds an observed value.
	BestSet bool `json:"best_set"`
}

// TrainMeta is the training metadata of a full checkpoint.
type TrainMeta struct {
	// Episodes is the number of training episodes completed at the
	// snapshot.
	Episodes int `json:"episodes"`
	// Fingerprint pins the full training configuration the stream was
	// produced under — game, episode schedule, and learner — as computed
	// by experiments.DRLConfig.Fingerprint; resuming under a different
	// configuration is rejected.
	Fingerprint string `json:"fingerprint,omitempty"`
	// PPO pins just the learner hyper-parameters
	// (rl.PPOConfig.Fingerprint); every full agent restore — including
	// deployment warm starts outside the experiments harness — rejects a
	// mismatch, so e.g. restored Adam moments can never silently continue
	// under a different learning rate.
	PPO string `json:"ppo,omitempty"`
}

// PricerState is the deployment state of the simulator-embedded online
// pricer (sim.OnlinePricer) at an optimization-phase boundary — exactly
// the state that, together with the learner sections, makes a restored
// pricer continue pricing and training bit-identically. The package
// stores only plain data here: the reward kind is the integer value of
// pomdp.RewardKind (this package cannot import pomdp).
type PricerState struct {
	// History is the encoder belief window, one row per remembered round,
	// oldest first; all rows have the same positive width (1 + demand
	// slots).
	History [][]float64 `json:"history"`
	// Obs is the pricer's current observation — the flattened window the
	// next action will be selected at (len(History)×row-width values).
	Obs []float64 `json:"obs"`
	// Best is the running-best live leader utility behind the Eq. (12)
	// binary reward; meaningful only when BestSet (JSON cannot carry the
	// -Inf that means "nothing observed yet").
	Best float64 `json:"best"`
	// BestSet reports whether Best holds an observed value.
	BestSet bool `json:"best_set"`
	// Rounds is the number of live rounds learned from so far.
	Rounds int `json:"rounds"`
	// Updates is the number of optimization phases run so far; it drives
	// both reward accounting and the snapshot cadence.
	Updates int `json:"updates"`
	// Snapshots is the number of mid-run checkpoints delivered so far,
	// this one included.
	Snapshots int `json:"snapshots"`
	// UpdateEvery is the optimization cadence |I| in live rounds.
	UpdateEvery int `json:"update_every"`
	// Reward is the configured reward kind as the integer value of
	// pomdp.RewardKind.
	Reward int `json:"reward"`
	// BestTolFrac is the RewardBinary tolerance band configuration
	// (pomdp.Config.BestTolFrac semantics: 0 default band, negative
	// exact).
	BestTolFrac float64 `json:"best_tol_frac"`
}

// Snapshot captures the current values of params into a weights-only
// Checkpoint (callers add Opt/RNG/Envs/Meta for a full training
// checkpoint; rl.PPO.Snapshot and rl.Trainer.Snapshot do). Parameter
// names must be unique.
func Snapshot(params []*Param) (*Checkpoint, error) {
	ck := &Checkpoint{Version: CheckpointVersion, Params: make(map[string][]float64, len(params))}
	for _, p := range params {
		if _, dup := ck.Params[p.Name]; dup {
			return nil, fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		v := make([]float64, len(p.Value))
		copy(v, p.Value)
		ck.Params[p.Name] = v
	}
	return ck, nil
}

// Restore copies checkpointed values into the matching parameters. The
// match must be exact in both directions: every parameter must be present
// in the checkpoint with the right length, and every checkpointed name
// must correspond to a parameter — a checkpoint from a different
// architecture fails loudly instead of partially applying.
func (c *Checkpoint) Restore(params []*Param) error {
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		if seen[p.Name] {
			return fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
		v, ok := c.Params[p.Name]
		if !ok {
			return fmt.Errorf("nn: checkpoint missing parameter %q", p.Name)
		}
		if len(v) != len(p.Value) {
			return fmt.Errorf("nn: checkpoint parameter %q has length %d, want %d", p.Name, len(v), len(p.Value))
		}
	}
	if extra := extraNames(c.Params, seen); len(extra) > 0 {
		return fmt.Errorf("nn: checkpoint carries unknown parameters %v — trained on a different architecture?", extra)
	}
	for _, p := range params {
		copy(p.Value, c.Params[p.Name])
	}
	return nil
}

// extraNames returns the sorted keys of m not present in known.
func extraNames(m map[string][]float64, known map[string]bool) []string {
	var extra []string
	for name := range m {
		if !known[name] {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	return extra
}

// Validate reports whether the checkpoint is structurally sound: a known
// version, at least one parameter, no zero-length vectors, every value
// finite, and internally consistent optimizer/environment sections.
// LoadCheckpoint validates automatically; callers constructing
// checkpoints by hand can validate explicitly.
func (c *Checkpoint) Validate() error {
	if c.Version < 0 || c.Version > CheckpointVersion {
		return fmt.Errorf("nn: checkpoint version %d not supported (max %d)", c.Version, CheckpointVersion)
	}
	if len(c.Params) == 0 {
		return fmt.Errorf("nn: checkpoint has no parameters")
	}
	for name, v := range c.Params {
		if err := validateVector("parameter", name, v); err != nil {
			return err
		}
	}
	if c.Opt != nil {
		if err := c.Opt.validate(c.Params); err != nil {
			return err
		}
	}
	if c.RNG != nil {
		if err := c.RNG.validate(c.Version, "rng"); err != nil {
			return err
		}
	}
	for i, es := range c.Envs {
		if es.BestSet && (math.IsNaN(es.Best) || math.IsInf(es.Best, 0)) {
			return fmt.Errorf("nn: checkpoint env %d best value %v is not finite", i, es.Best)
		}
		if err := es.RNG.validate(c.Version, fmt.Sprintf("env %d rng", i)); err != nil {
			return err
		}
	}
	if c.Meta != nil && c.Meta.Episodes < 0 {
		return fmt.Errorf("nn: checkpoint episode count %d is negative", c.Meta.Episodes)
	}
	if c.Pricer != nil {
		if c.Version < 2 {
			return fmt.Errorf("nn: checkpoint version %d cannot carry a pricer section (introduced in version 2)", c.Version)
		}
		if err := c.Pricer.validate(); err != nil {
			return err
		}
	}
	return nil
}

// validate checks one RNG stream position: a captured generator state is
// a version-2 feature, must be exactly mathx.StateLen words, and is only
// possible on a stream at least that many draws old.
func (r *RNGState) validate(version int, label string) error {
	if len(r.State) == 0 {
		return nil
	}
	if version < 2 {
		return fmt.Errorf("nn: checkpoint version %d cannot carry a captured %s generator state (introduced in version 2)", version, label)
	}
	if len(r.State) != mathx.StateLen {
		return fmt.Errorf("nn: checkpoint %s state has %d words, want %d", label, len(r.State), mathx.StateLen)
	}
	if r.Calls < mathx.StateLen {
		return fmt.Errorf("nn: checkpoint %s state with only %d calls is impossible (a full state needs at least %d draws)", label, r.Calls, mathx.StateLen)
	}
	return nil
}

// validate checks the pricer section's internal consistency.
func (p *PricerState) validate() error {
	if len(p.History) == 0 {
		return fmt.Errorf("nn: checkpoint pricer section has an empty belief window")
	}
	width := len(p.History[0])
	for i, row := range p.History {
		if len(row) == 0 || len(row) != width {
			return fmt.Errorf("nn: checkpoint pricer history row %d has width %d, want %d", i, len(row), width)
		}
		for j, x := range row {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("nn: checkpoint pricer history[%d][%d] is %v", i, j, x)
			}
		}
	}
	if len(p.Obs) != len(p.History)*width {
		return fmt.Errorf("nn: checkpoint pricer observation has %d values, want %d (%d rows × width %d)",
			len(p.Obs), len(p.History)*width, len(p.History), width)
	}
	for i, x := range p.Obs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("nn: checkpoint pricer observation element %d is %v", i, x)
		}
	}
	if p.BestSet && (math.IsNaN(p.Best) || math.IsInf(p.Best, 0)) {
		return fmt.Errorf("nn: checkpoint pricer best value %v is not finite", p.Best)
	}
	if p.Rounds < 0 || p.Updates < 0 || p.Snapshots < 0 {
		return fmt.Errorf("nn: checkpoint pricer counters negative (rounds=%d updates=%d snapshots=%d)", p.Rounds, p.Updates, p.Snapshots)
	}
	if p.UpdateEvery <= 0 {
		return fmt.Errorf("nn: checkpoint pricer update cadence %d must be positive", p.UpdateEvery)
	}
	if p.Updates > p.Rounds {
		return fmt.Errorf("nn: checkpoint pricer ran %d updates over only %d rounds", p.Updates, p.Rounds)
	}
	if p.Reward <= 0 {
		return fmt.Errorf("nn: checkpoint pricer reward kind %d unknown", p.Reward)
	}
	if math.IsNaN(p.BestTolFrac) || math.IsInf(p.BestTolFrac, 0) {
		return fmt.Errorf("nn: checkpoint pricer tolerance %v is not finite", p.BestTolFrac)
	}
	return nil
}

// validate checks the optimizer section against the parameter table: the
// moment maps must cover exactly the checkpointed parameters with
// matching lengths and finite values.
func (s *OptState) validate(params map[string][]float64) error {
	if s.Algo != "adam" {
		return fmt.Errorf("nn: checkpoint optimizer %q unknown (want adam)", s.Algo)
	}
	if s.Step < 0 {
		return fmt.Errorf("nn: checkpoint optimizer step %d is negative", s.Step)
	}
	for label, moments := range map[string]map[string][]float64{"m": s.M, "v": s.V} {
		if len(moments) != len(params) {
			return fmt.Errorf("nn: checkpoint optimizer %s covers %d parameters, want %d", label, len(moments), len(params))
		}
		for name, mv := range moments {
			pv, ok := params[name]
			if !ok {
				return fmt.Errorf("nn: checkpoint optimizer %s carries unknown parameter %q", label, name)
			}
			if len(mv) != len(pv) {
				return fmt.Errorf("nn: checkpoint optimizer %s for %q has length %d, want %d", label, name, len(mv), len(pv))
			}
			if err := validateVector("optimizer "+label, name, mv); err != nil {
				return err
			}
		}
	}
	return nil
}

// validateVector rejects empty vectors and non-finite values with a
// descriptive error.
func validateVector(kind, name string, v []float64) error {
	if len(v) == 0 {
		return fmt.Errorf("nn: checkpoint %s %q is empty", kind, name)
	}
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("nn: checkpoint %s %q element %d is %v", kind, name, i, x)
		}
	}
	return nil
}

// Save writes the checkpoint as JSON (the human-readable encoding; see
// SaveBinary for the compact one). Both encodings round-trip every
// float64 bit-exactly.
func (c *Checkpoint) Save(w io.Writer) error {
	if err := c.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(c); err != nil {
		return fmt.Errorf("nn: encoding checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint in either encoding,
// auto-detected from the leading bytes: files starting with the binary
// magic decode through the binary reader (see SaveBinary), everything
// else parses as JSON. Unknown JSON fields, unsupported versions,
// zero-length parameter vectors, non-finite values, and — for binary
// files — truncation, trailing garbage, or any bit flip (checksummed)
// are rejected with a descriptive error, so a hand-edited or corrupted
// file fails loudly instead of training on garbage.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(len(binaryMagic)); err == nil && string(magic) == binaryMagic {
		return loadBinaryCheckpoint(br)
	}
	var c Checkpoint
	dec := json.NewDecoder(br)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("nn: decoding checkpoint: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}
