package nn

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// CheckpointVersion is the current checkpoint format version. Version 1
// introduced the full training state (optimizer moments, RNG stream
// positions, environment streams, training metadata); version 0 files —
// the historical params-only JSON — still load, but can only warm-start
// weights, not resume training.
const CheckpointVersion = 1

// Checkpoint is a versioned, serializable snapshot of a training state.
// The parameter values are always present; the remaining sections are
// optional and carried only by full training checkpoints:
//
//   - Opt holds the per-parameter optimizer state (Adam first/second
//     moments and the global step count) so a restored run applies the
//     exact updates a continued run would.
//   - RNG is the policy RNG stream position as a (seed, calls) pair,
//     restored by replaying the stream (mathx.NewCountingSourceAt).
//   - Envs are the cross-episode states of the training-environment
//     streams, in fixed env-index order.
//   - Meta records the episode count at the snapshot and a fingerprint of
//     the training configuration, checked on resume.
//
// A checkpoint with all sections restores training bit-identically:
// train K episodes, snapshot, restore, train K more is the same run as
// training 2K straight (determinism contract rule 6).
type Checkpoint struct {
	// Version is the format version (CheckpointVersion when written by
	// this code; 0 in legacy params-only files).
	Version int `json:"version"`
	// Params maps parameter names to their flat values.
	Params map[string][]float64 `json:"params"`
	// Opt is the optimizer state (nil in weights-only checkpoints).
	Opt *OptState `json:"opt,omitempty"`
	// RNG is the policy RNG stream position (nil in weights-only
	// checkpoints).
	RNG *RNGState `json:"rng,omitempty"`
	// Envs are the training-environment stream states, env-index
	// ascending (empty for learners without trainer-owned environments,
	// e.g. the simulator's online pricer).
	Envs []EnvState `json:"envs,omitempty"`
	// Meta is the training metadata (nil in weights-only checkpoints).
	Meta *TrainMeta `json:"meta,omitempty"`
}

// OptState is the serialized optimizer state of a checkpoint.
type OptState struct {
	// Algo names the optimizer; only "adam" is defined.
	Algo string `json:"algo"`
	// Step is the global step count t (drives Adam's bias correction).
	Step int `json:"step"`
	// M and V map parameter names to the first and second moment
	// estimates, same length as the parameter.
	M map[string][]float64 `json:"m"`
	V map[string][]float64 `json:"v"`
}

// RNGState is a checkpointable RNG stream position: the stream's seed and
// the number of generator advances consumed so far (see
// mathx.CountingSource).
type RNGState struct {
	Seed  int64  `json:"seed"`
	Calls uint64 `json:"calls"`
}

// EnvState is the cross-episode state of one training-environment stream
// at an episode boundary: its RNG position plus the running-best
// statistic behind the paper's binary reward (Eq. 12), which persists
// across episodes.
type EnvState struct {
	// RNG is the environment's RNG stream position.
	RNG RNGState `json:"rng"`
	// Best is the running-best leader utility; meaningful only when
	// BestSet (JSON cannot carry the -Inf that means "nothing observed
	// yet").
	Best float64 `json:"best"`
	// BestSet reports whether Best holds an observed value.
	BestSet bool `json:"best_set"`
}

// TrainMeta is the training metadata of a full checkpoint.
type TrainMeta struct {
	// Episodes is the number of training episodes completed at the
	// snapshot.
	Episodes int `json:"episodes"`
	// Fingerprint pins the full training configuration the stream was
	// produced under — game, episode schedule, and learner — as computed
	// by experiments.DRLConfig.Fingerprint; resuming under a different
	// configuration is rejected.
	Fingerprint string `json:"fingerprint,omitempty"`
	// PPO pins just the learner hyper-parameters
	// (rl.PPOConfig.Fingerprint); every full agent restore — including
	// deployment warm starts outside the experiments harness — rejects a
	// mismatch, so e.g. restored Adam moments can never silently continue
	// under a different learning rate.
	PPO string `json:"ppo,omitempty"`
}

// Snapshot captures the current values of params into a weights-only
// Checkpoint (callers add Opt/RNG/Envs/Meta for a full training
// checkpoint; rl.PPO.Snapshot and rl.Trainer.Snapshot do). Parameter
// names must be unique.
func Snapshot(params []*Param) (*Checkpoint, error) {
	ck := &Checkpoint{Version: CheckpointVersion, Params: make(map[string][]float64, len(params))}
	for _, p := range params {
		if _, dup := ck.Params[p.Name]; dup {
			return nil, fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		v := make([]float64, len(p.Value))
		copy(v, p.Value)
		ck.Params[p.Name] = v
	}
	return ck, nil
}

// Restore copies checkpointed values into the matching parameters. The
// match must be exact in both directions: every parameter must be present
// in the checkpoint with the right length, and every checkpointed name
// must correspond to a parameter — a checkpoint from a different
// architecture fails loudly instead of partially applying.
func (c *Checkpoint) Restore(params []*Param) error {
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		if seen[p.Name] {
			return fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
		v, ok := c.Params[p.Name]
		if !ok {
			return fmt.Errorf("nn: checkpoint missing parameter %q", p.Name)
		}
		if len(v) != len(p.Value) {
			return fmt.Errorf("nn: checkpoint parameter %q has length %d, want %d", p.Name, len(v), len(p.Value))
		}
	}
	if extra := extraNames(c.Params, seen); len(extra) > 0 {
		return fmt.Errorf("nn: checkpoint carries unknown parameters %v — trained on a different architecture?", extra)
	}
	for _, p := range params {
		copy(p.Value, c.Params[p.Name])
	}
	return nil
}

// extraNames returns the sorted keys of m not present in known.
func extraNames(m map[string][]float64, known map[string]bool) []string {
	var extra []string
	for name := range m {
		if !known[name] {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	return extra
}

// Validate reports whether the checkpoint is structurally sound: a known
// version, at least one parameter, no zero-length vectors, every value
// finite, and internally consistent optimizer/environment sections.
// LoadCheckpoint validates automatically; callers constructing
// checkpoints by hand can validate explicitly.
func (c *Checkpoint) Validate() error {
	if c.Version < 0 || c.Version > CheckpointVersion {
		return fmt.Errorf("nn: checkpoint version %d not supported (max %d)", c.Version, CheckpointVersion)
	}
	if len(c.Params) == 0 {
		return fmt.Errorf("nn: checkpoint has no parameters")
	}
	for name, v := range c.Params {
		if err := validateVector("parameter", name, v); err != nil {
			return err
		}
	}
	if c.Opt != nil {
		if err := c.Opt.validate(c.Params); err != nil {
			return err
		}
	}
	for i, es := range c.Envs {
		if es.BestSet && (math.IsNaN(es.Best) || math.IsInf(es.Best, 0)) {
			return fmt.Errorf("nn: checkpoint env %d best value %v is not finite", i, es.Best)
		}
	}
	if c.Meta != nil && c.Meta.Episodes < 0 {
		return fmt.Errorf("nn: checkpoint episode count %d is negative", c.Meta.Episodes)
	}
	return nil
}

// validate checks the optimizer section against the parameter table: the
// moment maps must cover exactly the checkpointed parameters with
// matching lengths and finite values.
func (s *OptState) validate(params map[string][]float64) error {
	if s.Algo != "adam" {
		return fmt.Errorf("nn: checkpoint optimizer %q unknown (want adam)", s.Algo)
	}
	if s.Step < 0 {
		return fmt.Errorf("nn: checkpoint optimizer step %d is negative", s.Step)
	}
	for label, moments := range map[string]map[string][]float64{"m": s.M, "v": s.V} {
		if len(moments) != len(params) {
			return fmt.Errorf("nn: checkpoint optimizer %s covers %d parameters, want %d", label, len(moments), len(params))
		}
		for name, mv := range moments {
			pv, ok := params[name]
			if !ok {
				return fmt.Errorf("nn: checkpoint optimizer %s carries unknown parameter %q", label, name)
			}
			if len(mv) != len(pv) {
				return fmt.Errorf("nn: checkpoint optimizer %s for %q has length %d, want %d", label, name, len(mv), len(pv))
			}
			if err := validateVector("optimizer "+label, name, mv); err != nil {
				return err
			}
		}
	}
	return nil
}

// validateVector rejects empty vectors and non-finite values with a
// descriptive error.
func validateVector(kind, name string, v []float64) error {
	if len(v) == 0 {
		return fmt.Errorf("nn: checkpoint %s %q is empty", kind, name)
	}
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("nn: checkpoint %s %q element %d is %v", kind, name, i, x)
		}
	}
	return nil
}

// Save writes the checkpoint as JSON.
func (c *Checkpoint) Save(w io.Writer) error {
	if err := c.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(c); err != nil {
		return fmt.Errorf("nn: encoding checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and validates a JSON checkpoint. Unknown JSON
// fields, unsupported versions, zero-length parameter vectors, and
// non-finite values are rejected with a descriptive error, so a
// hand-edited or truncated file fails loudly instead of training on
// garbage.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("nn: decoding checkpoint: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}
