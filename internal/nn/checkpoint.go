package nn

import (
	"encoding/json"
	"fmt"
	"io"
)

// Checkpoint is a serializable snapshot of named parameter values.
type Checkpoint struct {
	// Params maps parameter names to their flat values.
	Params map[string][]float64 `json:"params"`
}

// Snapshot captures the current values of params into a Checkpoint.
// Parameter names must be unique.
func Snapshot(params []*Param) (*Checkpoint, error) {
	ck := &Checkpoint{Params: make(map[string][]float64, len(params))}
	for _, p := range params {
		if _, dup := ck.Params[p.Name]; dup {
			return nil, fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		v := make([]float64, len(p.Value))
		copy(v, p.Value)
		ck.Params[p.Name] = v
	}
	return ck, nil
}

// Restore copies checkpointed values into the matching parameters. Every
// parameter must be present in the checkpoint with the right length.
func (c *Checkpoint) Restore(params []*Param) error {
	for _, p := range params {
		v, ok := c.Params[p.Name]
		if !ok {
			return fmt.Errorf("nn: checkpoint missing parameter %q", p.Name)
		}
		if len(v) != len(p.Value) {
			return fmt.Errorf("nn: checkpoint parameter %q has length %d, want %d", p.Name, len(v), len(p.Value))
		}
		copy(p.Value, v)
	}
	return nil
}

// Save writes the checkpoint as JSON.
func (c *Checkpoint) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(c); err != nil {
		return fmt.Errorf("nn: encoding checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a JSON checkpoint.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("nn: decoding checkpoint: %w", err)
	}
	return &c, nil
}
