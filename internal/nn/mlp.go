package nn

import (
	"fmt"
	"math/rand"

	"vtmig/internal/mat"
)

// MLP is a multi-layer perceptron: a stack of Linear layers with an
// element-wise activation between consecutive layers. The output layer is
// linear (no activation), the usual choice for regression heads and policy
// means.
type MLP struct {
	modules []BatchModule
	params  []*Param
	in, out int
}

var _ BatchModule = (*MLP)(nil)

// NewMLP builds an MLP with the given layer sizes. sizes[0] is the input
// width, sizes[len-1] the output width; every in-between entry is a hidden
// layer followed by the activation. The paper's network is
// NewMLP("pi", []int{obs, 64, 64, 1}, ActTanh, rng).
func NewMLP(name string, sizes []int, hidden Activation, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic(fmt.Sprintf("nn: NewMLP needs at least 2 sizes, got %d", len(sizes)))
	}
	m := &MLP{in: sizes[0], out: sizes[len(sizes)-1]}
	for i := 0; i < len(sizes)-1; i++ {
		lin := NewLinear(fmt.Sprintf("%s.l%d", name, i), sizes[i], sizes[i+1], rng)
		m.modules = append(m.modules, lin)
		if i < len(sizes)-2 {
			m.modules = append(m.modules, NewActivation(hidden, sizes[i+1]))
		}
	}
	for _, mod := range m.modules {
		m.params = append(m.params, mod.Params()...)
	}
	return m
}

// Forward runs the input through every layer.
func (m *MLP) Forward(x []float64) []float64 {
	h := x
	for _, mod := range m.modules {
		h = mod.Forward(h)
	}
	return h
}

// Backward propagates the output gradient back through every layer and
// returns the gradient with respect to the input.
func (m *MLP) Backward(grad []float64) []float64 {
	g := grad
	for i := len(m.modules) - 1; i >= 0; i-- {
		g = m.modules[i].Backward(g)
	}
	return g
}

// ForwardBatch is the batched-inference entry point: it pushes every row
// of x through the network in one pass per layer, reusing each layer's
// scratch across minibatches. Row i of the result is bit-identical to
// Forward(x.Row(i)). The returned matrix is owned by the network.
func (m *MLP) ForwardBatch(x *mat.Matrix) *mat.Matrix {
	h := x
	for _, mod := range m.modules {
		h = mod.ForwardBatch(h)
	}
	return h
}

// BackwardBatch propagates a batch of output gradients back through every
// layer, accumulating parameter gradients row-ascending (bit-identical to
// per-sample Backward calls in row order), and returns the input
// gradients. The returned matrix is owned by the network.
func (m *MLP) BackwardBatch(grad *mat.Matrix) *mat.Matrix {
	g := grad
	for i := len(m.modules) - 1; i >= 0; i-- {
		g = m.modules[i].BackwardBatch(g)
	}
	return g
}

// Params returns all learnable parameters in layer order.
func (m *MLP) Params() []*Param { return m.params }

// InDim returns the input width.
func (m *MLP) InDim() int { return m.in }

// OutDim returns the output width.
func (m *MLP) OutDim() int { return m.out }
