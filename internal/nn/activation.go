package nn

import (
	"fmt"
	"math"

	"vtmig/internal/mat"
)

// Activation identifies an element-wise nonlinearity.
type Activation int

// Supported activations. ActTanh is the paper's choice for the two hidden
// layers; the others support ablations and reuse.
const (
	ActIdentity Activation = iota + 1
	ActTanh
	ActReLU
	ActSigmoid
	ActSoftplus
)

// String returns the lower-case activation name.
func (a Activation) String() string {
	switch a {
	case ActIdentity:
		return "identity"
	case ActTanh:
		return "tanh"
	case ActReLU:
		return "relu"
	case ActSigmoid:
		return "sigmoid"
	case ActSoftplus:
		return "softplus"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// activationLayer applies an element-wise nonlinearity. It has no
// parameters.
type activationLayer struct {
	kind    Activation
	dim     int
	lastIn  []float64
	lastOut []float64
	gradBuf []float64

	// batched caches, grown to the largest batch seen and reused
	inMat   mat.Matrix
	outMat  mat.Matrix
	gradMat mat.Matrix
}

var _ ShardModule = (*activationLayer)(nil)

// NewActivation returns an activation module of the given kind and width.
func NewActivation(kind Activation, dim int) BatchModule {
	switch kind {
	case ActIdentity, ActTanh, ActReLU, ActSigmoid, ActSoftplus:
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", int(kind)))
	}
	return &activationLayer{
		kind:    kind,
		dim:     dim,
		lastIn:  make([]float64, dim),
		lastOut: make([]float64, dim),
		gradBuf: make([]float64, dim),
	}
}

func (a *activationLayer) Forward(x []float64) []float64 {
	checkLen(a.kind.String(), "input", len(x), a.dim)
	copy(a.lastIn, x)
	for i, v := range x {
		a.lastOut[i] = activate(a.kind, v)
	}
	return a.lastOut
}

func (a *activationLayer) Backward(grad []float64) []float64 {
	checkLen(a.kind.String(), "output grad", len(grad), a.dim)
	for i, g := range grad {
		a.gradBuf[i] = g * activateDeriv(a.kind, a.lastIn[i], a.lastOut[i])
	}
	return a.gradBuf
}

// ForwardBatch applies the nonlinearity to every element of x. The
// returned matrix is owned by the layer.
func (a *activationLayer) ForwardBatch(x *mat.Matrix) *mat.Matrix {
	checkLen(a.kind.String(), "batch input width", x.Cols, a.dim)
	a.inMat.Resize(x.Rows, x.Cols)
	copy(a.inMat.Data, x.Data)
	a.outMat.Resize(x.Rows, x.Cols)
	for i, v := range x.Data {
		a.outMat.Data[i] = activate(a.kind, v)
	}
	return &a.outMat
}

// BackwardBatch multiplies grad element-wise by the activation derivative
// at the cached batched input. The returned matrix is owned by the layer.
func (a *activationLayer) BackwardBatch(grad *mat.Matrix) *mat.Matrix {
	checkLen(a.kind.String(), "batch grad width", grad.Cols, a.dim)
	checkLen(a.kind.String(), "batch grad rows", grad.Rows, a.inMat.Rows)
	a.gradMat.Resize(grad.Rows, grad.Cols)
	for i, g := range grad.Data {
		a.gradMat.Data[i] = g * activateDeriv(a.kind, a.inMat.Data[i], a.outMat.Data[i])
	}
	return &a.gradMat
}

// ShardClone returns a fresh activation layer of the same kind and width.
// The layer has no parameters, so the clone shares nothing but the
// configuration.
func (a *activationLayer) ShardClone() ShardModule {
	return NewActivation(a.kind, a.dim).(ShardModule)
}

// BackwardBatchDeferred is BackwardBatch: the layer has no parameters, so
// its backward pass is already strictly per-row.
func (a *activationLayer) BackwardBatchDeferred(grad *mat.Matrix) *mat.Matrix {
	return a.BackwardBatch(grad)
}

// AccumulateDeferred is a no-op: there are no parameter gradients.
func (a *activationLayer) AccumulateDeferred() {}

func (a *activationLayer) Params() []*Param { return nil }
func (a *activationLayer) InDim() int       { return a.dim }
func (a *activationLayer) OutDim() int      { return a.dim }

// activate evaluates the nonlinearity at v.
func activate(kind Activation, v float64) float64 {
	switch kind {
	case ActIdentity:
		return v
	case ActTanh:
		return math.Tanh(v)
	case ActReLU:
		if v > 0 {
			return v
		}
		return 0
	case ActSigmoid:
		return 1 / (1 + math.Exp(-v))
	case ActSoftplus:
		// Numerically stable log(1+e^v).
		if v > 30 {
			return v
		}
		return math.Log1p(math.Exp(v))
	default:
		panic("nn: unreachable activation kind")
	}
}

// activateDeriv evaluates d activate/dv given the cached input and output.
func activateDeriv(kind Activation, in, out float64) float64 {
	switch kind {
	case ActIdentity:
		return 1
	case ActTanh:
		return 1 - out*out
	case ActReLU:
		if in > 0 {
			return 1
		}
		return 0
	case ActSigmoid:
		return out * (1 - out)
	case ActSoftplus:
		return 1 / (1 + math.Exp(-in))
	default:
		panic("nn: unreachable activation kind")
	}
}
