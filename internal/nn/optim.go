package nn

import (
	"fmt"
	"math"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update using the gradients currently stored in the
	// parameters. It does not zero the gradients; call ZeroGrads after.
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	// LR is the learning rate. Must be positive.
	LR float64
	// Momentum in [0, 1). Zero disables momentum.
	Momentum float64

	velocity map[*Param][]float64
}

var _ Optimizer = (*SGD)(nil)

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	if lr <= 0 {
		panic(fmt.Sprintf("nn: SGD learning rate must be positive, got %g", lr))
	}
	if momentum < 0 || momentum >= 1 {
		panic(fmt.Sprintf("nn: SGD momentum must be in [0,1), got %g", momentum))
	}
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Param][]float64)}
}

// Step applies v = μv - lr·g; θ += v (or plain θ -= lr·g without momentum).
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if s.Momentum == 0 {
			for i, g := range p.Grad {
				p.Value[i] -= s.LR * g
			}
			continue
		}
		v, ok := s.velocity[p]
		if !ok {
			v = make([]float64, len(p.Value))
			s.velocity[p] = v
		}
		for i, g := range p.Grad {
			v[i] = s.Momentum*v[i] - s.LR*g
			p.Value[i] += v[i]
		}
	}
}

// Adam implements the Adam optimizer (Kingma & Ba, 2015) with bias
// correction, the optimizer used for the paper's PPO updates.
type Adam struct {
	// LR is the learning rate (the paper uses 1e-5).
	LR float64
	// Beta1 and Beta2 are the exponential decay rates for the first and
	// second moment estimates.
	Beta1, Beta2 float64
	// Eps avoids division by zero.
	Eps float64

	t int
	m map[*Param][]float64
	v map[*Param][]float64
}

var _ Optimizer = (*Adam)(nil)

// NewAdam returns an Adam optimizer with the standard β₁=0.9, β₂=0.999,
// ε=1e-8 defaults.
func NewAdam(lr float64) *Adam {
	if lr <= 0 {
		panic(fmt.Sprintf("nn: Adam learning rate must be positive, got %g", lr))
	}
	return &Adam{
		LR:    lr,
		Beta1: 0.9,
		Beta2: 0.999,
		Eps:   1e-8,
		m:     make(map[*Param][]float64),
		v:     make(map[*Param][]float64),
	}
}

// Step applies one Adam update to every parameter.
func (a *Adam) Step(params []*Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.Value))
			a.m[p] = m
			a.v[p] = make([]float64, len(p.Value))
		}
		v := a.v[p]
		for i, g := range p.Grad {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mHat := m[i] / c1
			vHat := v[i] / c2
			p.Value[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}

// ClipGradNorm rescales all gradients in place so that their global L2 norm
// does not exceed maxNorm, and returns the pre-clip norm. A maxNorm <= 0
// disables clipping.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var ss float64
	for _, p := range params {
		for _, g := range p.Grad {
			ss += g * g
		}
	}
	norm := math.Sqrt(ss)
	if maxNorm <= 0 || norm <= maxNorm || norm == 0 {
		return norm
	}
	scale := maxNorm / norm
	for _, p := range params {
		for i := range p.Grad {
			p.Grad[i] *= scale
		}
	}
	return norm
}
