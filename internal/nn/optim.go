package nn

import (
	"fmt"
	"math"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update using the gradients currently stored in the
	// parameters. It does not zero the gradients; call ZeroGrads after.
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	// LR is the learning rate. Must be positive.
	LR float64
	// Momentum in [0, 1). Zero disables momentum.
	Momentum float64

	velocity map[*Param][]float64
}

var _ Optimizer = (*SGD)(nil)

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	if lr <= 0 {
		panic(fmt.Sprintf("nn: SGD learning rate must be positive, got %g", lr))
	}
	if momentum < 0 || momentum >= 1 {
		panic(fmt.Sprintf("nn: SGD momentum must be in [0,1), got %g", momentum))
	}
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Param][]float64)}
}

// Step applies v = μv - lr·g; θ += v (or plain θ -= lr·g without momentum).
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if s.Momentum == 0 {
			for i, g := range p.Grad {
				p.Value[i] -= s.LR * g
			}
			continue
		}
		v, ok := s.velocity[p]
		if !ok {
			v = make([]float64, len(p.Value))
			s.velocity[p] = v
		}
		for i, g := range p.Grad {
			v[i] = s.Momentum*v[i] - s.LR*g
			p.Value[i] += v[i]
		}
	}
}

// Adam implements the Adam optimizer (Kingma & Ba, 2015) with bias
// correction, the optimizer used for the paper's PPO updates.
type Adam struct {
	// LR is the learning rate (the paper uses 1e-5).
	LR float64
	// Beta1 and Beta2 are the exponential decay rates for the first and
	// second moment estimates.
	Beta1, Beta2 float64
	// Eps avoids division by zero.
	Eps float64

	t int
	m map[*Param][]float64
	v map[*Param][]float64
}

var _ Optimizer = (*Adam)(nil)

// NewAdam returns an Adam optimizer with the standard β₁=0.9, β₂=0.999,
// ε=1e-8 defaults.
func NewAdam(lr float64) *Adam {
	if lr <= 0 {
		panic(fmt.Sprintf("nn: Adam learning rate must be positive, got %g", lr))
	}
	return &Adam{
		LR:    lr,
		Beta1: 0.9,
		Beta2: 0.999,
		Eps:   1e-8,
		m:     make(map[*Param][]float64),
		v:     make(map[*Param][]float64),
	}
}

// Step applies one Adam update to every parameter.
func (a *Adam) Step(params []*Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.Value))
			a.m[p] = m
			a.v[p] = make([]float64, len(p.Value))
		}
		v := a.v[p]
		for i, g := range p.Grad {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mHat := m[i] / c1
			vHat := v[i] / c2
			p.Value[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}

// StateSnapshot captures the optimizer state over the given parameters as
// a checkpoint section: the global step count and a copy of every
// parameter's first/second moment estimates (zeros for parameters the
// optimizer has not stepped yet, which is how Step would initialize
// them). Parameter names must be unique.
func (a *Adam) StateSnapshot(params []*Param) (*OptState, error) {
	st := &OptState{
		Algo: "adam",
		Step: a.t,
		M:    make(map[string][]float64, len(params)),
		V:    make(map[string][]float64, len(params)),
	}
	for _, p := range params {
		if _, dup := st.M[p.Name]; dup {
			return nil, fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		m := make([]float64, len(p.Value))
		v := make([]float64, len(p.Value))
		if am, ok := a.m[p]; ok {
			copy(m, am)
			copy(v, a.v[p])
		}
		st.M[p.Name] = m
		st.V[p.Name] = v
	}
	return st, nil
}

// RestoreState replaces the optimizer state with a checkpointed one. The
// match must be exact: the state must cover every parameter (and no
// others) with moment vectors of the right length, so a checkpoint from a
// different architecture fails loudly. After a restore, Step continues
// exactly as the snapshotted optimizer would have.
func (a *Adam) RestoreState(params []*Param, st *OptState) error {
	if st == nil {
		return fmt.Errorf("nn: nil optimizer state")
	}
	if st.Algo != "adam" {
		return fmt.Errorf("nn: optimizer state algo %q, want adam", st.Algo)
	}
	if st.Step < 0 {
		return fmt.Errorf("nn: optimizer state step %d is negative", st.Step)
	}
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		if seen[p.Name] {
			return fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
		for label, moments := range map[string]map[string][]float64{"m": st.M, "v": st.V} {
			mv, ok := moments[p.Name]
			if !ok {
				return fmt.Errorf("nn: optimizer state missing %s for parameter %q", label, p.Name)
			}
			if len(mv) != len(p.Value) {
				return fmt.Errorf("nn: optimizer state %s for %q has length %d, want %d", label, p.Name, len(mv), len(p.Value))
			}
		}
	}
	for label, moments := range map[string]map[string][]float64{"m": st.M, "v": st.V} {
		if extra := extraNames(moments, seen); len(extra) > 0 {
			return fmt.Errorf("nn: optimizer state %s carries unknown parameters %v", label, extra)
		}
	}
	a.t = st.Step
	a.m = make(map[*Param][]float64, len(params))
	a.v = make(map[*Param][]float64, len(params))
	for _, p := range params {
		a.m[p] = append([]float64(nil), st.M[p.Name]...)
		a.v[p] = append([]float64(nil), st.V[p.Name]...)
	}
	return nil
}

// ClipGradNorm rescales all gradients in place so that their global L2 norm
// does not exceed maxNorm, and returns the pre-clip norm. A maxNorm <= 0
// disables clipping.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var ss float64
	for _, p := range params {
		for _, g := range p.Grad {
			ss += g * g
		}
	}
	norm := math.Sqrt(ss)
	if maxNorm <= 0 || norm <= maxNorm || norm == 0 {
		return norm
	}
	scale := maxNorm / norm
	for _, p := range params {
		for i := range p.Grad {
			p.Grad[i] *= scale
		}
	}
	return norm
}
