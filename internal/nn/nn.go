// Package nn implements the small feed-forward neural-network substrate
// used by the DRL incentive mechanism: linear layers, activations,
// multi-layer perceptrons with manual backpropagation, gradient clipping,
// optimizers (SGD, Adam), and checkpointing.
//
// The package is sample-at-a-time: a call to Backward consumes the caches
// written by the immediately preceding call to Forward on the same module.
// Callers that process minibatches interleave Forward/Backward per sample
// and let gradients accumulate, then apply an optimizer step.
package nn

import "fmt"

// Param is one learnable tensor: a flat value slice and its accumulated
// gradient. Optimizers mutate Value in place; Backward accumulates into
// Grad; ZeroGrads resets Grad.
type Param struct {
	// Name identifies the parameter for checkpoints, e.g. "trunk.l0.W".
	Name string
	// Value is the flat parameter storage (row-major for matrices).
	Value []float64
	// Grad is the accumulated gradient, same length as Value.
	Grad []float64
}

// newParam allocates a named parameter of length n with zero value and
// gradient.
func newParam(name string, n int) *Param {
	return &Param{Name: name, Value: make([]float64, n), Grad: make([]float64, n)}
}

// ZeroGrads resets the gradient of every parameter to zero.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
}

// Module is a differentiable computation with learnable parameters.
type Module interface {
	// Forward computes the module output for input x and caches whatever
	// Backward needs. The returned slice is owned by the module and is
	// overwritten by the next Forward call.
	Forward(x []float64) []float64
	// Backward takes dLoss/dOutput, accumulates parameter gradients, and
	// returns dLoss/dInput. It must be called after a matching Forward.
	// The returned slice is owned by the module.
	Backward(grad []float64) []float64
	// Params returns the module's learnable parameters.
	Params() []*Param
	// InDim and OutDim report the expected input and output widths.
	InDim() int
	OutDim() int
}

// checkLen panics when a slice given to a module has the wrong length.
func checkLen(module string, what string, got, want int) {
	if got != want {
		panic(fmt.Sprintf("nn: %s %s length %d, want %d", module, what, got, want))
	}
}
