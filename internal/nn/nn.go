// Package nn implements the small feed-forward neural-network substrate
// used by the DRL incentive mechanism: linear layers, activations,
// multi-layer perceptrons with manual backpropagation, gradient clipping,
// optimizers (SGD, Adam), and checkpointing.
//
// The package is sample-at-a-time: a call to Backward consumes the caches
// written by the immediately preceding call to Forward on the same module.
// Callers that process minibatches interleave Forward/Backward per sample
// and let gradients accumulate, then apply an optimizer step.
package nn

import (
	"fmt"

	"vtmig/internal/mat"
)

// Param is one learnable tensor: a flat value slice and its accumulated
// gradient. Optimizers mutate Value in place; Backward accumulates into
// Grad; ZeroGrads resets Grad.
type Param struct {
	// Name identifies the parameter for checkpoints, e.g. "trunk.l0.W".
	Name string
	// Value is the flat parameter storage (row-major for matrices).
	Value []float64
	// Grad is the accumulated gradient, same length as Value.
	Grad []float64
}

// newParam allocates a named parameter of length n with zero value and
// gradient.
func newParam(name string, n int) *Param {
	return &Param{Name: name, Value: make([]float64, n), Grad: make([]float64, n)}
}

// ZeroGrads resets the gradient of every parameter to zero.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
}

// BatchModule is a Module that can additionally process a whole minibatch
// of rows in one call, backed by the mat kernel layer. Batched calls keep
// separate caches from the sample-at-a-time path, so interleaving Forward
// and ForwardBatch on the same module is safe, and their outputs are
// bit-identical row for row. Every module in this package is a
// BatchModule; the split interface only exists so that sample-at-a-time
// code does not need to know about batching.
type BatchModule interface {
	Module
	// ForwardBatch computes the module output for every row of x and
	// caches what BackwardBatch needs. The returned matrix is owned by the
	// module and overwritten by the next batched call.
	ForwardBatch(x *mat.Matrix) *mat.Matrix
	// BackwardBatch takes dLoss/dOutput rows, accumulates parameter
	// gradients in row-ascending order (bit-identical to per-sample
	// Backward calls), and returns dLoss/dInput rows. It must follow a
	// matching ForwardBatch.
	BackwardBatch(grad *mat.Matrix) *mat.Matrix
}

// ShardModule is a BatchModule that supports sharded minibatch
// parallelism by splitting the batched backward pass into a per-row part
// and a deferred cross-row gradient reduction:
//
//   - ShardClone returns a worker view that shares the module's
//     parameters (values AND gradient storage) but owns private forward/
//     backward caches, so several clones can process disjoint row shards
//     of one minibatch concurrently without touching shared state.
//   - BackwardBatchDeferred computes only the input gradients (a strictly
//     per-row operation) and records what the gradient reduction needs;
//     it must not write any parameter gradient.
//   - AccumulateDeferred folds the recorded shard into the shared
//     parameter gradients. Callers invoke it serially, one clone at a
//     time in fixed shard order; because every accumulation kernel sums
//     rows ascending with a single running accumulator per element,
//     reducing contiguous shards in order is bit-identical to one
//     full-batch BackwardBatch.
type ShardModule interface {
	BatchModule
	// ShardClone returns a worker view sharing parameters with the
	// receiver but owning private caches.
	ShardClone() ShardModule
	// BackwardBatchDeferred returns dLoss/dInput rows for the rows of the
	// immediately preceding ForwardBatch on this clone, deferring all
	// parameter-gradient accumulation to AccumulateDeferred. The returned
	// matrix is owned by the module.
	BackwardBatchDeferred(grad *mat.Matrix) *mat.Matrix
	// AccumulateDeferred adds the gradient contribution recorded by the
	// last BackwardBatchDeferred to the shared parameter gradients and
	// clears the record. It must not run concurrently with any other
	// accumulation or backward on a module sharing the same parameters.
	AccumulateDeferred()
}

// Module is a differentiable computation with learnable parameters.
type Module interface {
	// Forward computes the module output for input x and caches whatever
	// Backward needs. The returned slice is owned by the module and is
	// overwritten by the next Forward call.
	Forward(x []float64) []float64
	// Backward takes dLoss/dOutput, accumulates parameter gradients, and
	// returns dLoss/dInput. It must be called after a matching Forward.
	// The returned slice is owned by the module.
	Backward(grad []float64) []float64
	// Params returns the module's learnable parameters.
	Params() []*Param
	// InDim and OutDim report the expected input and output widths.
	InDim() int
	OutDim() int
}

// checkLen panics when a slice given to a module has the wrong length.
func checkLen(module string, what string, got, want int) {
	if got != want {
		panic(fmt.Sprintf("nn: %s %s length %d, want %d", module, what, got, want))
	}
}
