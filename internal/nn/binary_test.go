package nn

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"vtmig/internal/mathx"
)

// fullCheckpoint builds a deterministic checkpoint exercising every
// section, including a captured RNG generator state and the pricer
// section.
func fullCheckpoint(t testing.TB) *Checkpoint {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	params := randomParams(rng, map[string]int{"trunk.l0.W": 24, "trunk.l0.b": 4, "head.mean": 4, "logstd": 1})
	opt := NewAdam(1e-3)
	for step := 0; step < 3; step++ {
		for _, p := range params {
			for i := range p.Grad {
				p.Grad[i] = rng.NormFloat64()
			}
		}
		opt.Step(params)
	}
	ck, err := Snapshot(params)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Opt, err = opt.StateSnapshot(params); err != nil {
		t.Fatal(err)
	}
	src := mathx.NewCountingSourceAt(42, mathx.StateLen+37)
	ck.RNG = &RNGState{Seed: 42, Calls: src.Calls(), State: src.StateSnapshot()}
	ck.Envs = []EnvState{
		{RNG: RNGState{Seed: 7, Calls: 9}, Best: 1.5, BestSet: true},
		{RNG: RNGState{Seed: 8}},
	}
	ck.Meta = &TrainMeta{Episodes: 17, Fingerprint: "fp", PPO: "ppo-fp"}
	ck.Pricer = &PricerState{
		History:     [][]float64{{0.25, 0.5, 0.75}, {0.1, 0.2, 0.3}},
		Obs:         []float64{0.25, 0.5, 0.75, 0.1, 0.2, 0.3},
		Best:        3.25,
		BestSet:     true,
		Rounds:      40,
		Updates:     2,
		Snapshots:   1,
		UpdateEvery: 20,
		Reward:      2,
		BestTolFrac: 0.01,
	}
	return ck
}

// TestBinaryRoundTripBitIdentical is the binary round-trip property test:
// SaveBinary → LoadCheckpoint reproduces every section value-identically
// (floats bit for bit — DeepEqual on float64 is bitwise for the finite
// values checkpoints allow).
func TestBinaryRoundTripBitIdentical(t *testing.T) {
	ck := fullCheckpoint(t)
	var buf bytes.Buffer
	if err := ck.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, loaded) {
		t.Fatalf("binary round trip not identical:\nsaved:  %+v\nloaded: %+v", ck, loaded)
	}
}

// TestBinaryJSONCrossRoundTrip pins the two encodings to the same value:
// JSON(ck) and Binary(ck) load to identical checkpoints, and re-encoding
// the binary-loaded one as JSON matches the directly JSON-encoded bytes.
func TestBinaryJSONCrossRoundTrip(t *testing.T) {
	ck := fullCheckpoint(t)
	var jsonBuf, binBuf bytes.Buffer
	if err := ck.Save(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if err := ck.SaveBinary(&binBuf); err != nil {
		t.Fatal(err)
	}
	if binBuf.Len() >= jsonBuf.Len() {
		t.Errorf("binary encoding (%d bytes) not smaller than JSON (%d bytes)", binBuf.Len(), jsonBuf.Len())
	}
	fromJSON, err := LoadCheckpoint(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := LoadCheckpoint(&binBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromJSON, fromBin) {
		t.Fatal("JSON and binary decodings differ")
	}
	var reJSON, directJSON bytes.Buffer
	if err := fromBin.Save(&reJSON); err != nil {
		t.Fatal(err)
	}
	if err := ck.Save(&directJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reJSON.Bytes(), directJSON.Bytes()) {
		t.Fatal("binary → JSON re-encoding differs from direct JSON encoding")
	}
}

// TestBinaryLegacyVersionsRoundTrip keeps the v0/v1 section subsets
// encodable: a params-only and a version-1 checkpoint survive the binary
// round trip unchanged.
func TestBinaryLegacyVersionsRoundTrip(t *testing.T) {
	for name, ck := range map[string]*Checkpoint{
		"v0-params-only": {Version: 0, Params: map[string][]float64{"w": {0.5, -1}}},
		"v1-full": {
			Version: 1,
			Params:  map[string][]float64{"w": {1, 2}},
			Opt:     &OptState{Algo: "adam", Step: 2, M: map[string][]float64{"w": {0, 0}}, V: map[string][]float64{"w": {0, 0}}},
			RNG:     &RNGState{Seed: 3, Calls: 11},
			Meta:    &TrainMeta{Episodes: 2, Fingerprint: "f"},
		},
	} {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := ck.SaveBinary(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadCheckpoint(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ck, loaded) {
				t.Fatalf("round trip not identical:\nsaved:  %+v\nloaded: %+v", ck, loaded)
			}
		})
	}
}

// TestBinaryCorruptionFailsLoudly pins the decoder's corruption handling:
// every truncation point, any single bit flip, and trailing garbage are
// rejected — nothing decodes to a silently wrong checkpoint.
func TestBinaryCorruptionFailsLoudly(t *testing.T) {
	ck := fullCheckpoint(t)
	var buf bytes.Buffer
	if err := ck.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	bin := buf.Bytes()

	for cut := 0; cut < len(bin); cut++ {
		if _, err := LoadCheckpoint(bytes.NewReader(bin[:cut])); err == nil {
			t.Fatalf("truncation at byte %d/%d loaded", cut, len(bin))
		}
	}
	// Flip one bit in every byte. Flips inside the leading magic make the
	// file fall through to (failing) JSON; everything else must trip the
	// checksum.
	corrupt := make([]byte, len(bin))
	for i := 0; i < len(bin); i++ {
		copy(corrupt, bin)
		corrupt[i] ^= 1 << uint(i%8)
		if _, err := LoadCheckpoint(bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("bit flip at byte %d loaded", i)
		}
	}
	if _, err := LoadCheckpoint(bytes.NewReader(append(append([]byte(nil), bin...), 0))); err == nil {
		t.Fatal("trailing garbage loaded")
	}
}

// TestBinaryRejectsHostileLengths pins the pre-allocation caps: a tiny
// hand-built file claiming a huge table must fail on the cap, not attempt
// the allocation (the checksum is made valid so the cap is what trips).
func TestBinaryRejectsHostileLengths(t *testing.T) {
	body := []byte(binaryMagic)
	body = append(body, 2, 0) // version 2
	body = append(body, 'P')
	body = append(body, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01) // uvarint ~2^63
	body = append(body, 'Z')
	file := make([]byte, len(body)+4)
	copy(file, body)
	binary.LittleEndian.PutUint32(file[len(body):], crc32.ChecksumIEEE(body))
	_, err := LoadCheckpoint(bytes.NewReader(file))
	if err == nil {
		t.Fatal("hostile length loaded")
	}
	if !strings.Contains(err.Error(), "cap") {
		t.Fatalf("hostile length not stopped by the cap: %v", err)
	}
}

// TestValidateVersionGates pins the version negotiation: version-2-only
// sections on a lower version, and states that claim the impossible, are
// rejected in both encodings' shared validation.
func TestValidateVersionGates(t *testing.T) {
	for name, ck := range map[string]*Checkpoint{
		"v1-with-pricer": {
			Version: 1, Params: map[string][]float64{"w": {1}},
			Pricer: &PricerState{History: [][]float64{{1}}, Obs: []float64{1}, Rounds: 1, Updates: 1, UpdateEvery: 1, Reward: 1},
		},
		"v1-with-rng-state": {
			Version: 1, Params: map[string][]float64{"w": {1}},
			RNG: &RNGState{Seed: 1, Calls: mathx.StateLen, State: make([]uint64, mathx.StateLen)},
		},
		"v2-short-rng-state": {
			Version: 2, Params: map[string][]float64{"w": {1}},
			RNG: &RNGState{Seed: 1, Calls: mathx.StateLen, State: make([]uint64, 3)},
		},
		"v2-state-too-few-calls": {
			Version: 2, Params: map[string][]float64{"w": {1}},
			RNG: &RNGState{Seed: 1, Calls: 5, State: make([]uint64, mathx.StateLen)},
		},
		"v2-env-state-on-v1": {
			Version: 1, Params: map[string][]float64{"w": {1}},
			Envs: []EnvState{{RNG: RNGState{Seed: 1, Calls: mathx.StateLen, State: make([]uint64, mathx.StateLen)}}},
		},
		"pricer-width-mismatch": {
			Version: 2, Params: map[string][]float64{"w": {1}},
			Pricer: &PricerState{History: [][]float64{{1, 2}, {3}}, Obs: []float64{1, 2, 3}, Rounds: 1, Updates: 1, UpdateEvery: 1, Reward: 1},
		},
		"pricer-obs-mismatch": {
			Version: 2, Params: map[string][]float64{"w": {1}},
			Pricer: &PricerState{History: [][]float64{{1, 2}}, Obs: []float64{1}, Rounds: 1, Updates: 1, UpdateEvery: 1, Reward: 1},
		},
		"pricer-updates-exceed-rounds": {
			Version: 2, Params: map[string][]float64{"w": {1}},
			Pricer: &PricerState{History: [][]float64{{1}}, Obs: []float64{1}, Rounds: 1, Updates: 2, UpdateEvery: 1, Reward: 1},
		},
		"pricer-zero-cadence": {
			Version: 2, Params: map[string][]float64{"w": {1}},
			Pricer: &PricerState{History: [][]float64{{1}}, Obs: []float64{1}, Rounds: 1, Updates: 1, UpdateEvery: 0, Reward: 1},
		},
	} {
		t.Run(name, func(t *testing.T) {
			if err := ck.Validate(); err == nil {
				t.Fatalf("%s validated", name)
			}
		})
	}
	// The valid v2 shape passes.
	ok := &Checkpoint{
		Version: 2, Params: map[string][]float64{"w": {1}},
		RNG:    &RNGState{Seed: 1, Calls: mathx.StateLen + 5, State: make([]uint64, mathx.StateLen)},
		Pricer: &PricerState{History: [][]float64{{1}}, Obs: []float64{1}, Rounds: 20, Updates: 1, UpdateEvery: 20, Reward: 1},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid v2 checkpoint rejected: %v", err)
	}
}
