package nn

import (
	"math"
	"math/rand"
	"testing"

	"vtmig/internal/mat"
)

// TestLinearShardDeferredMatchesBatch checks the layer-level contract the
// sharded PPO update builds on: splitting a batch into contiguous row
// shards, running ForwardBatch + BackwardBatchDeferred on per-shard
// clones, and folding with AccumulateDeferred in shard order must
// reproduce the single full-batch ForwardBatch/BackwardBatch bit for bit
// — gradients and input gradients alike.
func TestLinearShardDeferredMatchesBatch(t *testing.T) {
	const (
		in, out = 13, 7
		rows    = 21
	)
	rng := rand.New(rand.NewSource(5))
	ref := NewLinear("ref", in, out, rng)
	x := mat.New(rows, in)
	x.Randomize(rng, 1)
	dy := mat.New(rows, out)
	dy.Randomize(rng, 1)

	// Reference: one full-batch pass.
	refY := ref.ForwardBatch(x).Clone()
	refDX := ref.BackwardBatch(dy).Clone()
	refGW := append([]float64(nil), ref.w.Grad...)
	refGB := append([]float64(nil), ref.b.Grad...)

	for _, shards := range []int{1, 2, 3, 5} {
		// Fresh gradient state on the shared parameters.
		for i := range ref.w.Grad {
			ref.w.Grad[i] = 0
		}
		for i := range ref.b.Grad {
			ref.b.Grad[i] = 0
		}
		clones := make([]ShardModule, shards)
		for s := range clones {
			clones[s] = ref.ShardClone()
		}
		// Per-row work, shard by shard (order is irrelevant here; the
		// reduction order below is what matters).
		dxs := make([]*mat.Matrix, shards)
		for s := 0; s < shards; s++ {
			lo, hi := s*rows/shards, (s+1)*rows/shards
			xs := mat.FromSlice(hi-lo, in, x.Data[lo*in:hi*in])
			dys := mat.FromSlice(hi-lo, out, dy.Data[lo*out:hi*out])
			y := clones[s].ForwardBatch(xs)
			for r := 0; r < hi-lo; r++ {
				for j := 0; j < out; j++ {
					if math.Float64bits(y.At(r, j)) != math.Float64bits(refY.At(lo+r, j)) {
						t.Fatalf("shards=%d: forward row %d col %d differs", shards, lo+r, j)
					}
				}
			}
			dxs[s] = clones[s].BackwardBatchDeferred(dys)
		}
		// Deferred backward must not have touched the shared gradients.
		for i, g := range ref.w.Grad {
			if g != 0 {
				t.Fatalf("shards=%d: deferred backward wrote w.Grad[%d]=%v", shards, i, g)
			}
		}
		// Serial reduction in shard order.
		for s := 0; s < shards; s++ {
			clones[s].AccumulateDeferred()
		}
		for i := range refGW {
			if math.Float64bits(ref.w.Grad[i]) != math.Float64bits(refGW[i]) {
				t.Fatalf("shards=%d: w.Grad[%d] = %v, want %v", shards, i, ref.w.Grad[i], refGW[i])
			}
		}
		for i := range refGB {
			if math.Float64bits(ref.b.Grad[i]) != math.Float64bits(refGB[i]) {
				t.Fatalf("shards=%d: b.Grad[%d] = %v, want %v", shards, i, ref.b.Grad[i], refGB[i])
			}
		}
		for s := 0; s < shards; s++ {
			lo, hi := s*rows/shards, (s+1)*rows/shards
			for r := 0; r < hi-lo; r++ {
				for j := 0; j < in; j++ {
					if math.Float64bits(dxs[s].At(r, j)) != math.Float64bits(refDX.At(lo+r, j)) {
						t.Fatalf("shards=%d: dX row %d col %d differs", shards, lo+r, j)
					}
				}
			}
		}
	}
}

// TestActivationShardClone checks that activation clones are independent:
// batched passes on a clone must not disturb the original's caches.
func TestActivationShardClone(t *testing.T) {
	orig := NewActivation(ActTanh, 4).(ShardModule)
	clone := orig.ShardClone()

	x1 := mat.New(2, 4)
	x1.Fill(0.5)
	y1 := orig.ForwardBatch(x1).Clone()

	x2 := mat.New(3, 4)
	x2.Fill(-1.25)
	clone.ForwardBatch(x2)

	dy := mat.New(2, 4)
	dy.Fill(1)
	// orig's backward must still use its own cached input, not the
	// clone's.
	dx := orig.BackwardBatch(dy)
	want := 1 - y1.At(0, 0)*y1.At(0, 0)
	if math.Float64bits(dx.At(0, 0)) != math.Float64bits(want) {
		t.Fatalf("clone corrupted original caches: dx = %v, want %v", dx.At(0, 0), want)
	}
	// AccumulateDeferred on a parameter-free layer is a no-op.
	clone.AccumulateDeferred()
}
