package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"vtmig/internal/mathx"
)

func TestLinearForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("t", 2, 2, rng)
	// Overwrite with known weights: W = [1 2; 3 4], b = [10, 20].
	copy(l.Params()[0].Value, []float64{1, 2, 3, 4})
	copy(l.Params()[1].Value, []float64{10, 20})
	got := l.Forward([]float64{5, 6})
	if got[0] != 27 || got[1] != 59 {
		t.Errorf("Forward = %v, want [27 59]", got)
	}
}

func TestLinearBackwardGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("t", 2, 2, rng)
	copy(l.Params()[0].Value, []float64{1, 2, 3, 4})
	copy(l.Params()[1].Value, []float64{0, 0})
	l.Forward([]float64{5, 6})
	gin := l.Backward([]float64{1, 1})
	// dL/dx = W^T g = [1+3, 2+4] = [4, 6]
	if gin[0] != 4 || gin[1] != 6 {
		t.Errorf("input grad = %v, want [4 6]", gin)
	}
	// dW = g ⊗ x = [5 6; 5 6]
	w := l.Params()[0]
	want := []float64{5, 6, 5, 6}
	for i := range want {
		if w.Grad[i] != want[i] {
			t.Errorf("dW = %v, want %v", w.Grad, want)
			break
		}
	}
	// db = g
	b := l.Params()[1]
	if b.Grad[0] != 1 || b.Grad[1] != 1 {
		t.Errorf("db = %v, want [1 1]", b.Grad)
	}
}

func TestLinearGradAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("t", 1, 1, rng)
	l.Forward([]float64{2})
	l.Backward([]float64{1})
	l.Forward([]float64{2})
	l.Backward([]float64{1})
	if got := l.Params()[0].Grad[0]; got != 4 {
		t.Errorf("accumulated dW = %v, want 4", got)
	}
	ZeroGrads(l.Params())
	if got := l.Params()[0].Grad[0]; got != 0 {
		t.Errorf("after ZeroGrads dW = %v, want 0", got)
	}
}

func TestActivationValues(t *testing.T) {
	tests := []struct {
		kind Activation
		in   float64
		out  float64
	}{
		{ActIdentity, 1.5, 1.5},
		{ActTanh, 0, 0},
		{ActTanh, 1, math.Tanh(1)},
		{ActReLU, -2, 0},
		{ActReLU, 3, 3},
		{ActSigmoid, 0, 0.5},
		{ActSoftplus, 0, math.Log(2)},
		{ActSoftplus, 50, 50}, // stable branch
	}
	for _, tt := range tests {
		t.Run(tt.kind.String(), func(t *testing.T) {
			a := NewActivation(tt.kind, 1)
			got := a.Forward([]float64{tt.in})
			if !mathx.AlmostEqual(got[0], tt.out, 1e-12) {
				t.Errorf("%v(%v) = %v, want %v", tt.kind, tt.in, got[0], tt.out)
			}
		})
	}
}

func TestActivationDerivativesNumerically(t *testing.T) {
	kinds := []Activation{ActIdentity, ActTanh, ActReLU, ActSigmoid, ActSoftplus}
	points := []float64{-1.7, -0.3, 0.4, 2.1}
	const h = 1e-6
	for _, kind := range kinds {
		for _, x := range points {
			a := NewActivation(kind, 1)
			a.Forward([]float64{x})
			analytic := a.Backward([]float64{1})[0]
			numeric := (activate(kind, x+h) - activate(kind, x-h)) / (2 * h)
			if !mathx.AlmostEqual(analytic, numeric, 1e-4) {
				t.Errorf("%v'(%v): analytic %v, numeric %v", kind, x, analytic, numeric)
			}
		}
	}
}

func TestUnknownActivationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewActivation(0) did not panic")
		}
	}()
	NewActivation(Activation(0), 1)
}

func TestMLPShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP("pi", []int{5, 64, 64, 2}, ActTanh, rng)
	if m.InDim() != 5 || m.OutDim() != 2 {
		t.Fatalf("dims = (%d, %d), want (5, 2)", m.InDim(), m.OutDim())
	}
	out := m.Forward(make([]float64, 5))
	if len(out) != 2 {
		t.Fatalf("output length = %d, want 2", len(out))
	}
	// 3 linear layers -> 6 params.
	if got := len(m.Params()); got != 6 {
		t.Errorf("param count = %d, want 6", got)
	}
}

func TestMLPPanicsOnShortSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMLP with one size did not panic")
		}
	}()
	NewMLP("x", []int{3}, ActTanh, rand.New(rand.NewSource(1)))
}

// TestMLPGradCheck verifies the full backpropagation against central
// finite differences for every parameter of a small tanh MLP, using the
// scalar loss L = sum(c ⊙ f(x)).
func TestMLPGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP("gc", []int{3, 5, 4, 2}, ActTanh, rng)
	x := []float64{0.3, -0.8, 1.2}
	c := []float64{0.7, -1.3}

	loss := func() float64 {
		out := m.Forward(x)
		return c[0]*out[0] + c[1]*out[1]
	}

	// Analytic gradients.
	ZeroGrads(m.Params())
	m.Forward(x)
	m.Backward(c)

	const h = 1e-6
	for _, p := range m.Params() {
		for i := range p.Value {
			orig := p.Value[i]
			p.Value[i] = orig + h
			up := loss()
			p.Value[i] = orig - h
			down := loss()
			p.Value[i] = orig
			numeric := (up - down) / (2 * h)
			if !mathx.AlmostEqual(p.Grad[i], numeric, 1e-4) {
				t.Fatalf("grad check failed at %s[%d]: analytic %v, numeric %v", p.Name, i, p.Grad[i], numeric)
			}
		}
	}
}

// TestMLPInputGradCheck verifies dL/dx, which the policy-gradient path
// through a squashing function relies on.
func TestMLPInputGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMLP("gc", []int{3, 6, 1}, ActTanh, rng)
	x := []float64{0.5, -0.2, 0.9}

	m.Forward(x)
	gin := m.Backward([]float64{1})

	const h = 1e-6
	for i := range x {
		orig := x[i]
		x[i] = orig + h
		up := m.Forward(x)[0]
		x[i] = orig - h
		down := m.Forward(x)[0]
		x[i] = orig
		numeric := (up - down) / (2 * h)
		if !mathx.AlmostEqual(gin[i], numeric, 1e-4) {
			t.Fatalf("input grad check failed at x[%d]: analytic %v, numeric %v", i, gin[i], numeric)
		}
	}
}

func TestSGDStep(t *testing.T) {
	p := newParam("p", 2)
	p.Value[0], p.Value[1] = 1, 2
	p.Grad[0], p.Grad[1] = 0.5, -0.5
	NewSGD(0.1, 0).Step([]*Param{p})
	if !mathx.AlmostEqual(p.Value[0], 0.95, 1e-12) || !mathx.AlmostEqual(p.Value[1], 2.05, 1e-12) {
		t.Errorf("SGD step = %v, want [0.95 2.05]", p.Value)
	}
}

func TestSGDMomentumAccelerates(t *testing.T) {
	p := newParam("p", 1)
	s := NewSGD(0.1, 0.9)
	p.Grad[0] = 1
	s.Step([]*Param{p})
	first := -p.Value[0] // first displacement = lr
	p.Grad[0] = 1
	prev := p.Value[0]
	s.Step([]*Param{p})
	second := prev - p.Value[0]
	if second <= first {
		t.Errorf("momentum should accelerate: first %v, second %v", first, second)
	}
}

func TestSGDValidation(t *testing.T) {
	for _, tc := range []struct {
		lr, mom float64
	}{{0, 0}, {-1, 0}, {0.1, 1}, {0.1, -0.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSGD(%v, %v) did not panic", tc.lr, tc.mom)
				}
			}()
			NewSGD(tc.lr, tc.mom)
		}()
	}
}

func TestAdamDecreasesQuadratic(t *testing.T) {
	// Minimize f(θ) = (θ-3)² starting from 0.
	p := newParam("p", 1)
	opt := NewAdam(0.1)
	for i := 0; i < 2000; i++ {
		p.Grad[0] = 2 * (p.Value[0] - 3)
		opt.Step([]*Param{p})
		ZeroGrads([]*Param{p})
	}
	if !mathx.AlmostEqual(p.Value[0], 3, 1e-2) {
		t.Errorf("Adam converged to %v, want 3", p.Value[0])
	}
}

func TestAdamFirstStepIsLR(t *testing.T) {
	// With bias correction, the first Adam step has magnitude ≈ lr
	// regardless of gradient scale.
	for _, g := range []float64{1e-4, 1, 1e4} {
		p := newParam("p", 1)
		p.Grad[0] = g
		NewAdam(0.01).Step([]*Param{p})
		if !mathx.AlmostEqual(-p.Value[0], 0.01, 1e-3) {
			t.Errorf("first step with grad %v moved %v, want ~0.01", g, -p.Value[0])
		}
	}
}

func TestAdamValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAdam(0) did not panic")
		}
	}()
	NewAdam(0)
}

func TestClipGradNorm(t *testing.T) {
	p := newParam("p", 2)
	p.Grad[0], p.Grad[1] = 3, 4 // norm 5
	pre := ClipGradNorm([]*Param{p}, 1)
	if pre != 5 {
		t.Errorf("pre-clip norm = %v, want 5", pre)
	}
	if got := math.Hypot(p.Grad[0], p.Grad[1]); !mathx.AlmostEqual(got, 1, 1e-12) {
		t.Errorf("post-clip norm = %v, want 1", got)
	}
}

func TestClipGradNormNoopBelowThreshold(t *testing.T) {
	p := newParam("p", 2)
	p.Grad[0], p.Grad[1] = 0.3, 0.4
	ClipGradNorm([]*Param{p}, 1)
	if p.Grad[0] != 0.3 || p.Grad[1] != 0.4 {
		t.Errorf("clip modified gradients below threshold: %v", p.Grad)
	}
}

func TestClipGradNormDisabled(t *testing.T) {
	p := newParam("p", 1)
	p.Grad[0] = 100
	ClipGradNorm([]*Param{p}, 0)
	if p.Grad[0] != 100 {
		t.Error("maxNorm=0 must disable clipping")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP("ck", []int{2, 4, 1}, ActTanh, rng)
	before := m.Forward([]float64{0.5, -0.5})[0]

	ck, err := Snapshot(m.Params())
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	var buf bytes.Buffer
	if err := ck.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}

	// Perturb and restore.
	for _, p := range m.Params() {
		for i := range p.Value {
			p.Value[i] += 1
		}
	}
	loaded, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if err := loaded.Restore(m.Params()); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	after := m.Forward([]float64{0.5, -0.5})[0]
	if before != after {
		t.Errorf("output after restore = %v, want %v", after, before)
	}
}

func TestCheckpointMissingParam(t *testing.T) {
	ck := &Checkpoint{Params: map[string][]float64{}}
	err := ck.Restore([]*Param{newParam("absent", 1)})
	if err == nil {
		t.Fatal("Restore with missing parameter succeeded")
	}
}

func TestCheckpointLengthMismatch(t *testing.T) {
	ck := &Checkpoint{Params: map[string][]float64{"p": {1, 2}}}
	err := ck.Restore([]*Param{newParam("p", 3)})
	if err == nil {
		t.Fatal("Restore with length mismatch succeeded")
	}
}

func TestSnapshotDuplicateNames(t *testing.T) {
	_, err := Snapshot([]*Param{newParam("dup", 1), newParam("dup", 1)})
	if err == nil {
		t.Fatal("Snapshot with duplicate names succeeded")
	}
}

func TestTrainXORWithAdam(t *testing.T) {
	// End-to-end sanity: a 2-8-1 tanh MLP learns XOR.
	rng := rand.New(rand.NewSource(42))
	m := NewMLP("xor", []int{2, 8, 1}, ActTanh, rng)
	opt := NewAdam(0.05)
	inputs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	targets := []float64{0, 1, 1, 0}
	for epoch := 0; epoch < 2000; epoch++ {
		ZeroGrads(m.Params())
		for i, x := range inputs {
			out := m.Forward(x)[0]
			// L = (out - target)^2, dL/dout = 2(out-target)
			m.Backward([]float64{2 * (out - targets[i])})
		}
		opt.Step(m.Params())
	}
	for i, x := range inputs {
		out := m.Forward(x)[0]
		if math.Abs(out-targets[i]) > 0.2 {
			t.Errorf("XOR(%v) = %v, want %v", x, out, targets[i])
		}
	}
}
