package nn

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
)

// This file implements the compact binary checkpoint encoding. JSON stays
// the human-readable default; the binary form exists because JSON float
// text is the known size/decode bottleneck once checkpoints are written
// on a serving cadence (ROADMAP items 1–2). Both encodings carry exactly
// the same Checkpoint value, bit for bit — floats are stored as their
// IEEE-754 bits, and Go's JSON encoder round-trips float64 exactly — so
// converting between them is lossless.
//
// Layout (all integers little-endian):
//
//	"vtck"                magic
//	uint16                format version (Checkpoint.Version)
//	sections              tagged, fixed order, optional ones omitted:
//	  'P' params          uvarint count, then per sorted name:
//	                      string, vec
//	  'O' optimizer       string algo, uvarint step, param-table m,
//	                      param-table v
//	  'R' rng             rngstate
//	  'E' envs            uvarint count, then per env:
//	                      rngstate, f64 best, bool bestSet
//	  'M' meta            uvarint episodes, string fingerprint, string ppo
//	  'p' pricer          uvarint rows, uvarint width, rows×width f64,
//	                      vec obs, f64 best, bool bestSet,
//	                      uvarint rounds/updates/snapshots/updateEvery/
//	                      reward, f64 bestTolFrac
//	  'Z'                 end of sections
//	uint32                IEEE CRC-32 of everything above
//
// where string = uvarint length + bytes, vec = uvarint length + length
// f64 words, f64 = 8-byte Float64bits, u64 = 8 bytes, rngstate = u64
// seed-bits + u64 calls + uvarint state length + state u64 words, and a
// param-table repeats the 'P' section payload. The trailing checksum
// makes truncation and bit flips fail loudly; the decoder additionally
// rejects trailing bytes, unknown or out-of-order tags, and implausible
// lengths before allocating for them.
const binaryMagic = "vtck"

// Decoder sanity caps: reject implausible lengths before allocating.
// They bound a hostile or corrupted header, not legitimate checkpoints —
// the largest real sections here are a few thousand floats.
const (
	binMaxName  = 1 << 12 // parameter-name / string bytes
	binMaxVec   = 1 << 26 // float64 words per vector
	binMaxCount = 1 << 20 // table entries (params, envs)
)

// SaveBinary writes the checkpoint in the compact binary encoding (see
// the format comment above). LoadCheckpoint auto-detects it by the
// leading magic.
func (c *Checkpoint) SaveBinary(w io.Writer) error {
	if err := c.Validate(); err != nil {
		return err
	}
	var buf bytes.Buffer
	e := binWriter{buf: &buf}
	buf.WriteString(binaryMagic)
	var ver [2]byte
	binary.LittleEndian.PutUint16(ver[:], uint16(c.Version))
	buf.Write(ver[:])

	e.tag('P')
	e.paramTable(c.Params)
	if c.Opt != nil {
		e.tag('O')
		e.str(c.Opt.Algo)
		e.uvarint(uint64(c.Opt.Step))
		e.paramTable(c.Opt.M)
		e.paramTable(c.Opt.V)
	}
	if c.RNG != nil {
		e.tag('R')
		e.rngState(c.RNG)
	}
	if len(c.Envs) > 0 {
		e.tag('E')
		e.uvarint(uint64(len(c.Envs)))
		for i := range c.Envs {
			es := &c.Envs[i]
			e.rngState(&es.RNG)
			e.f64(es.Best)
			e.bool(es.BestSet)
		}
	}
	if c.Meta != nil {
		e.tag('M')
		e.uvarint(uint64(c.Meta.Episodes))
		e.str(c.Meta.Fingerprint)
		e.str(c.Meta.PPO)
	}
	if c.Pricer != nil {
		p := c.Pricer
		e.tag('p')
		e.uvarint(uint64(len(p.History)))
		e.uvarint(uint64(len(p.History[0])))
		for _, row := range p.History {
			for _, x := range row {
				e.f64(x)
			}
		}
		e.vec(p.Obs)
		e.f64(p.Best)
		e.bool(p.BestSet)
		e.uvarint(uint64(p.Rounds))
		e.uvarint(uint64(p.Updates))
		e.uvarint(uint64(p.Snapshots))
		e.uvarint(uint64(p.UpdateEvery))
		e.uvarint(uint64(p.Reward))
		e.f64(p.BestTolFrac)
	}
	e.tag('Z')

	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(sum[:])
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("nn: writing binary checkpoint: %w", err)
	}
	return nil
}

// loadBinaryCheckpoint decodes a binary checkpoint (the magic has been
// peeked, not consumed) and validates it like the JSON path.
func loadBinaryCheckpoint(r io.Reader) (*Checkpoint, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("nn: reading binary checkpoint: %w", err)
	}
	// magic + version + 'P' tag + empty table + 'Z' + checksum is the
	// structural minimum.
	if len(data) < len(binaryMagic)+2+1+1+1+4 {
		return nil, fmt.Errorf("nn: binary checkpoint truncated (%d bytes)", len(data))
	}
	if string(data[:len(binaryMagic)]) != binaryMagic {
		return nil, fmt.Errorf("nn: binary checkpoint magic mismatch")
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("nn: binary checkpoint checksum mismatch (file %08x, computed %08x) — truncated or corrupted", want, got)
	}

	d := &binReader{data: body, pos: len(binaryMagic)}
	c := &Checkpoint{Version: int(binary.LittleEndian.Uint16(body[len(binaryMagic):]))}
	d.pos += 2

	if tag := d.tag(); tag != 'P' {
		return nil, d.fail("want params section 'P', got %q", tag)
	}
	c.Params = d.paramTable()
	tag := d.tag()
	if tag == 'O' {
		c.Opt = &OptState{Algo: d.str(), Step: int(d.uvarint(binMaxCount))}
		c.Opt.M = d.paramTable()
		c.Opt.V = d.paramTable()
		tag = d.tag()
	}
	if tag == 'R' {
		c.RNG = d.rngState()
		tag = d.tag()
	}
	if tag == 'E' {
		n := int(d.uvarint(binMaxCount))
		if d.err == nil {
			c.Envs = make([]EnvState, n)
			for i := range c.Envs {
				rng := d.rngState()
				if rng != nil {
					c.Envs[i].RNG = *rng
				}
				c.Envs[i].Best = d.f64()
				c.Envs[i].BestSet = d.bool()
			}
		}
		tag = d.tag()
	}
	if tag == 'M' {
		c.Meta = &TrainMeta{Episodes: int(d.uvarint(binMaxCount)), Fingerprint: d.str(), PPO: d.str()}
		tag = d.tag()
	}
	if tag == 'p' {
		p := &PricerState{}
		rows := int(d.uvarint(binMaxCount))
		width := int(d.uvarint(binMaxCount))
		if d.err == nil && rows*width > binMaxVec {
			d.fail("pricer window %d×%d implausibly large", rows, width)
		}
		if d.err == nil {
			p.History = make([][]float64, rows)
			flat := make([]float64, rows*width)
			for i := range p.History {
				p.History[i] = flat[i*width : (i+1)*width]
				for j := range p.History[i] {
					p.History[i][j] = d.f64()
				}
			}
		}
		p.Obs = d.vec()
		p.Best = d.f64()
		p.BestSet = d.bool()
		p.Rounds = int(d.uvarint(binMaxVec))
		p.Updates = int(d.uvarint(binMaxVec))
		p.Snapshots = int(d.uvarint(binMaxVec))
		p.UpdateEvery = int(d.uvarint(binMaxVec))
		p.Reward = int(d.uvarint(binMaxCount))
		p.BestTolFrac = d.f64()
		c.Pricer = p
		tag = d.tag()
	}
	if d.err == nil && tag != 'Z' {
		d.fail("unknown or out-of-order section %q", tag)
	}
	if d.err == nil && d.pos != len(d.data) {
		d.fail("%d trailing bytes after end of sections", len(d.data)-d.pos)
	}
	if d.err != nil {
		return nil, d.err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// binWriter appends the format's primitives to a buffer. Buffer writes
// cannot fail, so the encoder carries no error state.
type binWriter struct {
	buf     *bytes.Buffer
	scratch [binary.MaxVarintLen64]byte
}

func (e *binWriter) tag(t byte) { e.buf.WriteByte(t) }

func (e *binWriter) uvarint(v uint64) {
	n := binary.PutUvarint(e.scratch[:], v)
	e.buf.Write(e.scratch[:n])
}

func (e *binWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(e.scratch[:8], v)
	e.buf.Write(e.scratch[:8])
}

func (e *binWriter) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *binWriter) bool(v bool) {
	if v {
		e.buf.WriteByte(1)
	} else {
		e.buf.WriteByte(0)
	}
}

func (e *binWriter) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf.WriteString(s)
}

func (e *binWriter) vec(v []float64) {
	e.uvarint(uint64(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

// paramTable writes a name→vector table sorted by name, so the encoding
// of a checkpoint is deterministic.
func (e *binWriter) paramTable(m map[string][]float64) {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	e.uvarint(uint64(len(names)))
	for _, name := range names {
		e.str(name)
		e.vec(m[name])
	}
}

func (e *binWriter) rngState(r *RNGState) {
	e.u64(uint64(r.Seed))
	e.u64(r.Calls)
	e.uvarint(uint64(len(r.State)))
	for _, x := range r.State {
		e.u64(x)
	}
}

// binReader is a cursor over the checksummed body. The first failure
// sticks: every later read returns zero values and the original error
// surfaces once at the end, keeping the section parsing linear.
type binReader struct {
	data []byte
	pos  int
	err  error
}

func (d *binReader) fail(format string, args ...any) error {
	if d.err == nil {
		d.err = fmt.Errorf("nn: binary checkpoint at byte %d: %s", d.pos, fmt.Sprintf(format, args...))
	}
	return d.err
}

func (d *binReader) tag() byte {
	if d.err != nil || d.pos >= len(d.data) {
		d.fail("truncated section tag")
		return 0
	}
	t := d.data[d.pos]
	d.pos++
	return t
}

func (d *binReader) uvarint(max uint64) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.pos += n
	if v > max {
		d.fail("length %d exceeds the format cap %d", v, max)
		return 0
	}
	return v
}

func (d *binReader) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.pos+8 > len(d.data) {
		d.fail("truncated 64-bit word")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.data[d.pos:])
	d.pos += 8
	return v
}

func (d *binReader) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *binReader) bool() bool {
	if d.err != nil || d.pos >= len(d.data) {
		d.fail("truncated bool")
		return false
	}
	b := d.data[d.pos]
	d.pos++
	if b > 1 {
		d.fail("bool byte %d", b)
		return false
	}
	return b == 1
}

func (d *binReader) str() string {
	n := int(d.uvarint(binMaxName))
	if d.err != nil {
		return ""
	}
	if d.pos+n > len(d.data) {
		d.fail("truncated %d-byte string", n)
		return ""
	}
	s := string(d.data[d.pos : d.pos+n])
	d.pos += n
	return s
}

func (d *binReader) vec() []float64 {
	n := int(d.uvarint(binMaxVec))
	if d.err != nil {
		return nil
	}
	if d.pos+8*n > len(d.data) {
		d.fail("truncated %d-word vector", n)
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = d.f64()
	}
	return v
}

func (d *binReader) paramTable() map[string][]float64 {
	n := int(d.uvarint(binMaxCount))
	if d.err != nil {
		return nil
	}
	m := make(map[string][]float64, n)
	for i := 0; i < n; i++ {
		name := d.str()
		vec := d.vec()
		if d.err != nil {
			return nil
		}
		if _, dup := m[name]; dup {
			d.fail("duplicate table entry %q", name)
			return nil
		}
		m[name] = vec
	}
	return m
}

func (d *binReader) rngState() *RNGState {
	r := &RNGState{Seed: int64(d.u64()), Calls: d.u64()}
	n := int(d.uvarint(binMaxVec))
	if d.err != nil {
		return nil
	}
	if n > 0 {
		if d.pos+8*n > len(d.data) {
			d.fail("truncated %d-word RNG state", n)
			return nil
		}
		r.State = make([]uint64, n)
		for i := range r.State {
			r.State[i] = d.u64()
		}
	}
	return r
}
