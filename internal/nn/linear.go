package nn

import (
	"math/rand"

	"vtmig/internal/mat"
)

// Linear is a fully connected layer: y = W·x + b.
type Linear struct {
	in, out int
	w       *Param // out×in, row-major
	b       *Param // out

	// wView and gwView are persistent matrix views over the parameter
	// storage; building them once keeps the hot path allocation-free.
	wView, gwView mat.Matrix

	// caches for sample-at-a-time backward
	lastX   []float64
	outBuf  []float64
	gradBuf []float64

	// caches for batched forward/backward, grown to the largest batch seen
	// and reused across minibatches
	xCache  mat.Matrix // batch×in copy of the last batched input
	outMat  mat.Matrix // batch×out
	gradMat mat.Matrix // batch×in

	// pendingDY is the output-gradient matrix recorded by the last
	// BackwardBatchDeferred, consumed by AccumulateDeferred. It aliases
	// caller-owned storage that stays valid until the reduction runs.
	pendingDY *mat.Matrix
}

var _ ShardModule = (*Linear)(nil)

// NewLinear returns a Linear layer with Xavier-uniform weights and zero
// biases. The name prefixes the parameter names ("<name>.W", "<name>.b").
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		in:      in,
		out:     out,
		w:       newParam(name+".W", in*out),
		b:       newParam(name+".b", out),
		lastX:   make([]float64, in),
		outBuf:  make([]float64, out),
		gradBuf: make([]float64, in),
	}
	l.wView = *mat.FromSlice(out, in, l.w.Value)
	l.gwView = *mat.FromSlice(out, in, l.w.Grad)
	l.wView.XavierInit(rng, in, out)
	return l
}

// Forward computes W·x + b.
func (l *Linear) Forward(x []float64) []float64 {
	checkLen("Linear", "input", len(x), l.in)
	copy(l.lastX, x)
	// A stack copy of the view keeps the shape fields in registers across
	// the kernel call; going through the long-lived &l.wView pointer
	// measurably pessimizes MulVec.
	w := l.wView
	w.MulVec(x, l.outBuf)
	mat.AddInto(l.outBuf, l.outBuf, l.b.Value)
	return l.outBuf
}

// Backward accumulates dW += grad ⊗ x and db += grad, and returns Wᵀ·grad.
func (l *Linear) Backward(grad []float64) []float64 {
	checkLen("Linear", "output grad", len(grad), l.out)
	gw := l.gwView
	gw.AddOuterScaled(grad, l.lastX, 1)
	mat.AddInto(l.b.Grad, l.b.Grad, grad)
	w := l.wView
	w.MulVecT(grad, l.gradBuf)
	return l.gradBuf
}

// ForwardBatch computes Y = X·Wᵀ + b for a batch of rows. The returned
// matrix is owned by the layer and overwritten by the next batched call;
// its element (i, j) is bit-identical to Forward(X.Row(i))[j].
func (l *Linear) ForwardBatch(x *mat.Matrix) *mat.Matrix {
	checkLen("Linear", "batch input width", x.Cols, l.in)
	l.xCache.Resize(x.Rows, x.Cols)
	copy(l.xCache.Data, x.Data)
	l.outMat.Resize(x.Rows, l.out)
	mat.MulABTBiasTo(&l.outMat, x, &l.wView, l.b.Value)
	return &l.outMat
}

// BackwardBatch accumulates dW += dYᵀ·X and db += column sums of dY, and
// returns dX = dY·W. Gradient contributions are accumulated row-ascending,
// bit-identical to calling Backward once per batch row in order. The
// returned matrix is owned by the layer.
func (l *Linear) BackwardBatch(grad *mat.Matrix) *mat.Matrix {
	checkLen("Linear", "batch grad width", grad.Cols, l.out)
	checkLen("Linear", "batch grad rows", grad.Rows, l.xCache.Rows)
	mat.MulATBAddTo(&l.gwView, grad, &l.xCache)
	mat.AddColSumTo(l.b.Grad, grad)
	l.gradMat.Resize(grad.Rows, l.in)
	mat.MulTo(&l.gradMat, grad, &l.wView)
	return &l.gradMat
}

// ShardClone returns a worker view of the layer: it shares the weight and
// bias parameters (values and gradient storage) with the receiver but
// owns fresh forward/backward caches, so clones can run batched passes
// over disjoint row shards concurrently. Only the deferred-accumulation
// path may be used concurrently; plain Backward/BackwardBatch on a clone
// would race on the shared gradients.
func (l *Linear) ShardClone() ShardModule {
	return &Linear{
		in:      l.in,
		out:     l.out,
		w:       l.w,
		b:       l.b,
		wView:   l.wView,
		gwView:  l.gwView,
		lastX:   make([]float64, l.in),
		outBuf:  make([]float64, l.out),
		gradBuf: make([]float64, l.in),
	}
}

// BackwardBatchDeferred computes dX = dY·W for the rows of the preceding
// ForwardBatch and records dY for a later AccumulateDeferred, without
// touching the parameter gradients. grad must stay valid (unmodified by
// the caller) until the reduction has run.
func (l *Linear) BackwardBatchDeferred(grad *mat.Matrix) *mat.Matrix {
	checkLen("Linear", "batch grad width", grad.Cols, l.out)
	checkLen("Linear", "batch grad rows", grad.Rows, l.xCache.Rows)
	l.pendingDY = grad
	l.gradMat.Resize(grad.Rows, l.in)
	mat.MulTo(&l.gradMat, grad, &l.wView)
	return &l.gradMat
}

// AccumulateDeferred folds the recorded shard into the shared gradients:
// dW += dYᵀ·X and db += column sums of dY, rows ascending — continuing
// the running per-element accumulation exactly where the previous shard
// left off. A no-op when no deferred backward is pending.
func (l *Linear) AccumulateDeferred() {
	if l.pendingDY == nil {
		return
	}
	mat.MulATBAddTo(&l.gwView, l.pendingDY, &l.xCache)
	mat.AddColSumTo(l.b.Grad, l.pendingDY)
	l.pendingDY = nil
}

// Params returns the weight and bias parameters.
func (l *Linear) Params() []*Param { return []*Param{l.w, l.b} }

// InDim returns the input width.
func (l *Linear) InDim() int { return l.in }

// OutDim returns the output width.
func (l *Linear) OutDim() int { return l.out }
