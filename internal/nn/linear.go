package nn

import (
	"math/rand"

	"vtmig/internal/mat"
)

// Linear is a fully connected layer: y = W·x + b.
type Linear struct {
	in, out int
	w       *Param // out×in, row-major
	b       *Param // out

	// caches for backward
	lastX   []float64
	outBuf  []float64
	gradBuf []float64
}

var _ Module = (*Linear)(nil)

// NewLinear returns a Linear layer with Xavier-uniform weights and zero
// biases. The name prefixes the parameter names ("<name>.W", "<name>.b").
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		in:      in,
		out:     out,
		w:       newParam(name+".W", in*out),
		b:       newParam(name+".b", out),
		lastX:   make([]float64, in),
		outBuf:  make([]float64, out),
		gradBuf: make([]float64, in),
	}
	mat.FromSlice(out, in, l.w.Value).XavierInit(rng, in, out)
	return l
}

// Forward computes W·x + b.
func (l *Linear) Forward(x []float64) []float64 {
	checkLen("Linear", "input", len(x), l.in)
	copy(l.lastX, x)
	w := mat.FromSlice(l.out, l.in, l.w.Value)
	w.MulVec(x, l.outBuf)
	mat.AddInto(l.outBuf, l.outBuf, l.b.Value)
	return l.outBuf
}

// Backward accumulates dW += grad ⊗ x and db += grad, and returns Wᵀ·grad.
func (l *Linear) Backward(grad []float64) []float64 {
	checkLen("Linear", "output grad", len(grad), l.out)
	gw := mat.FromSlice(l.out, l.in, l.w.Grad)
	gw.AddOuterScaled(grad, l.lastX, 1)
	mat.AddInto(l.b.Grad, l.b.Grad, grad)
	w := mat.FromSlice(l.out, l.in, l.w.Value)
	w.MulVecT(grad, l.gradBuf)
	return l.gradBuf
}

// Params returns the weight and bias parameters.
func (l *Linear) Params() []*Param { return []*Param{l.w, l.b} }

// InDim returns the input width.
func (l *Linear) InDim() int { return l.in }

// OutDim returns the output width.
func (l *Linear) OutDim() int { return l.out }
