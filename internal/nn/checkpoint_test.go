package nn

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// randomParams builds a deterministic random parameter set.
func randomParams(rng *rand.Rand, sizes map[string]int) []*Param {
	names := make([]string, 0, len(sizes))
	for name := range sizes {
		names = append(names, name)
	}
	// map order is random; fix it so the test is reproducible
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	params := make([]*Param, 0, len(names))
	for _, name := range names {
		p := newParam(name, sizes[name])
		for i := range p.Value {
			p.Value[i] = rng.NormFloat64()
		}
		params = append(params, p)
	}
	return params
}

// TestFullCheckpointRoundTrip is the round-trip property test of the full
// format: Snapshot → Save → Load → Restore is value-identical for the
// parameters, the optimizer moments, and every auxiliary section.
func TestFullCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	params := randomParams(rng, map[string]int{"a.W": 12, "a.b": 3, "logstd": 1})

	// Give the optimizer a real state by stepping a few times.
	opt := NewAdam(1e-3)
	for step := 0; step < 5; step++ {
		for _, p := range params {
			for i := range p.Grad {
				p.Grad[i] = rng.NormFloat64()
			}
		}
		opt.Step(params)
	}

	ck, err := Snapshot(params)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Version != CheckpointVersion {
		t.Fatalf("Snapshot version %d, want %d", ck.Version, CheckpointVersion)
	}
	if ck.Opt, err = opt.StateSnapshot(params); err != nil {
		t.Fatal(err)
	}
	ck.RNG = &RNGState{Seed: 42, Calls: 12345}
	ck.Envs = []EnvState{{RNG: RNGState{Seed: 7, Calls: 9}, Best: 1.5, BestSet: true}, {RNG: RNGState{Seed: 8}}}
	ck.Meta = &TrainMeta{Episodes: 17, Fingerprint: "fp-v1"}

	var buf bytes.Buffer
	if err := ck.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Perturb everything, then restore.
	for _, p := range params {
		for i := range p.Value {
			p.Value[i] += 1
		}
	}
	fresh := NewAdam(1e-3)
	if err := loaded.Restore(params); err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreState(params, loaded.Opt); err != nil {
		t.Fatal(err)
	}

	for _, p := range params {
		want := ck.Params[p.Name]
		for i := range p.Value {
			if math.Float64bits(p.Value[i]) != math.Float64bits(want[i]) {
				t.Fatalf("param %q[%d] = %v, want %v", p.Name, i, p.Value[i], want[i])
			}
		}
		for label, moments := range map[string]map[*Param][]float64{"m": fresh.m, "v": fresh.v} {
			want := ck.Opt.M[p.Name]
			if label == "v" {
				want = ck.Opt.V[p.Name]
			}
			got := moments[p]
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("moment %s %q[%d] = %v, want %v", label, p.Name, i, got[i], want[i])
				}
			}
		}
	}
	if fresh.t != opt.t {
		t.Fatalf("restored step %d, want %d", fresh.t, opt.t)
	}
	if !reflect.DeepEqual(loaded.RNG, ck.RNG) || *loaded.Meta != *ck.Meta || !reflect.DeepEqual(loaded.Envs, ck.Envs) {
		t.Fatal("auxiliary sections did not round-trip")
	}
}

// TestAdamRestoredStateContinuesIdentically pins the optimizer half of
// resume bit-identity: stepping a restored Adam produces exactly the
// parameters a continued run would.
func TestAdamRestoredStateContinuesIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cont := randomParams(rng, map[string]int{"w": 8})
	contOpt := NewAdam(0.01)

	grads := make([][]float64, 20)
	for i := range grads {
		grads[i] = make([]float64, 8)
		for j := range grads[i] {
			grads[i][j] = rng.NormFloat64()
		}
	}
	apply := func(opt *Adam, params []*Param, g []float64) {
		copy(params[0].Grad, g)
		opt.Step(params)
	}
	for i := 0; i < 10; i++ {
		apply(contOpt, cont, grads[i])
	}

	// Snapshot at step 10 and restore into a fresh optimizer + params.
	ck, err := Snapshot(cont)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Opt, err = contOpt.StateSnapshot(cont); err != nil {
		t.Fatal(err)
	}
	res := []*Param{newParam("w", 8)}
	resOpt := NewAdam(0.01)
	if err := ck.Restore(res); err != nil {
		t.Fatal(err)
	}
	if err := resOpt.RestoreState(res, ck.Opt); err != nil {
		t.Fatal(err)
	}

	for i := 10; i < 20; i++ {
		apply(contOpt, cont, grads[i])
		apply(resOpt, res, grads[i])
	}
	for i := range cont[0].Value {
		if math.Float64bits(cont[0].Value[i]) != math.Float64bits(res[0].Value[i]) {
			t.Fatalf("element %d diverged: %v vs %v", i, cont[0].Value[i], res[0].Value[i])
		}
	}
}

// TestRestoreRejectsUnknownParam pins the strictness fix: a checkpoint
// carrying parameters the network does not have must fail loudly instead
// of partially applying.
func TestRestoreRejectsUnknownParam(t *testing.T) {
	ck := &Checkpoint{Params: map[string][]float64{"w": {1}, "stale.W": {2, 3}}}
	err := ck.Restore([]*Param{newParam("w", 1)})
	if err == nil {
		t.Fatal("checkpoint with unknown parameter restored")
	}
	if !strings.Contains(err.Error(), "stale.W") {
		t.Fatalf("error does not name the unknown parameter: %v", err)
	}
}

// TestRestoreStateStrict pins the optimizer-state restore checks.
func TestRestoreStateStrict(t *testing.T) {
	p := newParam("w", 2)
	good := &OptState{Algo: "adam", Step: 1, M: map[string][]float64{"w": {0, 0}}, V: map[string][]float64{"w": {0, 0}}}
	for name, st := range map[string]*OptState{
		"nil":        nil,
		"wrong-algo": {Algo: "sgd", M: good.M, V: good.V},
		"neg-step":   {Algo: "adam", Step: -1, M: good.M, V: good.V},
		"missing-m":  {Algo: "adam", M: map[string][]float64{}, V: good.V},
		"short-v":    {Algo: "adam", M: good.M, V: map[string][]float64{"w": {0}}},
		"extra": {Algo: "adam", M: map[string][]float64{"w": {0, 0}, "x": {0}},
			V: map[string][]float64{"w": {0, 0}, "x": {0}}},
	} {
		if err := NewAdam(0.1).RestoreState([]*Param{p}, st); err == nil {
			t.Errorf("%s: invalid optimizer state restored", name)
		}
	}
	if err := NewAdam(0.1).RestoreState([]*Param{p}, good); err != nil {
		t.Errorf("valid state rejected: %v", err)
	}
}

// TestLoadCheckpointRejectsMalformed pins the decode validation: hand-
// edited or truncated files fail with descriptive errors instead of
// loading garbage.
func TestLoadCheckpointRejectsMalformed(t *testing.T) {
	for name, in := range map[string]string{
		"truncated":       `{"params":{"w":[1,`,
		"empty-param":     `{"params":{"w":[]}}`,
		"no-params":       `{"version":1}`,
		"unknown-field":   `{"params":{"w":[1]},"surprise":3}`,
		"future-version":  `{"version":99,"params":{"w":[1]}}`,
		"bad-opt-algo":    `{"params":{"w":[1]},"opt":{"algo":"sgd","m":{"w":[0]},"v":{"w":[0]}}}`,
		"opt-extra-param": `{"params":{"w":[1]},"opt":{"algo":"adam","m":{"w":[0],"x":[0]},"v":{"w":[0],"x":[0]}}}`,
		"opt-short-m":     `{"params":{"w":[1,2]},"opt":{"algo":"adam","m":{"w":[0]},"v":{"w":[0,0]}}}`,
		"neg-episodes":    `{"params":{"w":[1]},"meta":{"episodes":-2}}`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := LoadCheckpoint(strings.NewReader(in)); err == nil {
				t.Fatalf("malformed checkpoint %s loaded", name)
			}
		})
	}
}

// TestValidateRejectsNonFinite covers the NaN/Inf guard directly (the
// JSON decoder cannot produce them, but hand-built checkpoints and future
// binary formats can).
func TestValidateRejectsNonFinite(t *testing.T) {
	for name, v := range map[string]float64{"nan": math.NaN(), "+inf": math.Inf(1), "-inf": math.Inf(-1)} {
		ck := &Checkpoint{Params: map[string][]float64{"w": {1, v}}}
		if err := ck.Validate(); err == nil {
			t.Errorf("%s value validated", name)
		}
		if err := ck.Save(&bytes.Buffer{}); err == nil {
			t.Errorf("%s value saved", name)
		}
	}
	ck := &Checkpoint{Params: map[string][]float64{"w": {1}}, Envs: []EnvState{{Best: math.NaN(), BestSet: true}}}
	if err := ck.Validate(); err == nil {
		t.Error("NaN env best validated")
	}
}

// TestLegacyParamsOnlyCheckpointLoads keeps version-0 files (the
// historical params-only JSON written before full checkpointing) loading
// for weight-only warm starts.
func TestLegacyParamsOnlyCheckpointLoads(t *testing.T) {
	ck, err := LoadCheckpoint(strings.NewReader(`{"params":{"w":[0.5,-1]}}`))
	if err != nil {
		t.Fatal(err)
	}
	if ck.Version != 0 || ck.Opt != nil || ck.RNG != nil || ck.Meta != nil {
		t.Fatalf("legacy checkpoint mis-parsed: %+v", ck)
	}
	p := newParam("w", 2)
	if err := ck.Restore([]*Param{p}); err != nil {
		t.Fatal(err)
	}
	if p.Value[0] != 0.5 || p.Value[1] != -1 {
		t.Fatalf("restored %v", p.Value)
	}
}

// FuzzLoadCheckpoint feeds arbitrary bytes through the loader — both the
// JSON path and, via the leading magic, the binary decoder: it must never
// panic — malformed, truncated, or hostile input returns an error (or a
// checkpoint that passed validation).
func FuzzLoadCheckpoint(f *testing.F) {
	f.Add(`{"params":{"w":[1,2]}}`)
	f.Add(`{"version":1,"params":{"w":[1]},"opt":{"algo":"adam","step":3,"m":{"w":[0]},"v":{"w":[0]}},"rng":{"seed":1,"calls":10},"envs":[{"rng":{"seed":2,"calls":5},"best":1.5,"best_set":true}],"meta":{"episodes":4,"fingerprint":"x"}}`)
	f.Add(`{"params":{"w":[`)
	f.Add(`{"params":{"w":[]}}`)
	f.Add(`{"params":{"w":[1e308,-1e308]}}`)
	f.Add(`{"version":-1,"params":{"w":[1]}}`)
	f.Add(`null`)
	f.Add(``)
	f.Add(`[1,2,3]`)
	// Binary seeds: a valid encoding, truncations, a bit flip, trailing
	// garbage, and a bare/hostile header.
	bin := fuzzBinarySeed(f)
	f.Add(string(bin))
	f.Add(string(bin[:len(bin)/2]))
	f.Add(string(bin[:len(bin)-2]))
	flipped := append([]byte(nil), bin...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(string(flipped))
	f.Add(string(bin) + "tail")
	f.Add(binaryMagic)
	f.Add(binaryMagic + "\x02\x00P\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01Z")
	f.Fuzz(func(t *testing.T, in string) {
		ck, err := LoadCheckpoint(strings.NewReader(in))
		if err != nil {
			return
		}
		// Whatever loads must re-validate and re-save cleanly in both
		// encodings, and the binary re-encoding must load back.
		if err := ck.Validate(); err != nil {
			t.Fatalf("loaded checkpoint fails validation: %v", err)
		}
		if err := ck.Save(&bytes.Buffer{}); err != nil {
			t.Fatalf("loaded checkpoint fails to save: %v", err)
		}
		var buf bytes.Buffer
		if err := ck.SaveBinary(&buf); err != nil {
			t.Fatalf("loaded checkpoint fails to save as binary: %v", err)
		}
		if _, err := LoadCheckpoint(&buf); err != nil {
			t.Fatalf("binary re-encoding fails to load: %v", err)
		}
	})
}

// fuzzBinarySeed builds a small valid binary checkpoint for the fuzz
// corpus.
func fuzzBinarySeed(f *testing.F) []byte {
	f.Helper()
	ck := &Checkpoint{
		Version: CheckpointVersion,
		Params:  map[string][]float64{"w": {1, 2}, "b": {3}},
		Opt:     &OptState{Algo: "adam", Step: 3, M: map[string][]float64{"w": {0, 0}, "b": {0}}, V: map[string][]float64{"w": {0, 0}, "b": {0}}},
		RNG:     &RNGState{Seed: 1, Calls: 10},
		Envs:    []EnvState{{RNG: RNGState{Seed: 2, Calls: 5}, Best: 1.5, BestSet: true}},
		Meta:    &TrainMeta{Episodes: 4, Fingerprint: "x", PPO: "y"},
		Pricer: &PricerState{
			History: [][]float64{{0.1, 0.2}, {0.3, 0.4}}, Obs: []float64{0.1, 0.2, 0.3, 0.4},
			Best: 2, BestSet: true, Rounds: 40, Updates: 2, Snapshots: 1, UpdateEvery: 20, Reward: 1,
		},
	}
	var buf bytes.Buffer
	if err := ck.SaveBinary(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}
