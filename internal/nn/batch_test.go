package nn

import (
	"math/rand"
	"testing"

	"vtmig/internal/mat"
)

// cloneGrads snapshots every parameter gradient.
func cloneGrads(params []*Param) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), p.Grad...)
	}
	return out
}

// TestForwardBatchMatchesForward checks that the batched path reproduces
// the sample-at-a-time path bit for bit, row by row.
func TestForwardBatchMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP("t", []int{7, 64, 64, 3}, ActTanh, rng)
	const batch = 9
	x := mat.New(batch, 7)
	x.Randomize(rng, 1)
	y := m.ForwardBatch(x)
	if y.Rows != batch || y.Cols != 3 {
		t.Fatalf("batch output %dx%d, want %dx3", y.Rows, y.Cols, batch)
	}
	for b := 0; b < batch; b++ {
		want := m.Forward(x.Row(b))
		for j, v := range want {
			if y.At(b, j) != v {
				t.Fatalf("row %d col %d: batch %v != sequential %v", b, j, y.At(b, j), v)
			}
		}
	}
}

// TestBackwardBatchMatchesBackward checks that batched gradient
// accumulation is bit-identical to per-sample Backward calls in row order,
// for both parameter gradients and input gradients.
func TestBackwardBatchMatchesBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const batch, in, out = 6, 5, 2
	build := func() *MLP {
		return NewMLP("t", []int{in, 16, out}, ActTanh, rand.New(rand.NewSource(3)))
	}
	x := mat.New(batch, in)
	x.Randomize(rng, 1)
	dy := mat.New(batch, out)
	dy.Randomize(rng, 1)

	seq := build()
	seqIn := mat.New(batch, in)
	for b := 0; b < batch; b++ {
		seq.Forward(x.Row(b))
		copy(seqIn.Row(b), seq.Backward(dy.Row(b)))
	}
	wantGrads := cloneGrads(seq.Params())

	bat := build()
	bat.ForwardBatch(x)
	gin := bat.BackwardBatch(dy)
	for i, p := range bat.Params() {
		for j, g := range p.Grad {
			if g != wantGrads[i][j] {
				t.Fatalf("param %s grad[%d]: batch %v != sequential %v", p.Name, j, g, wantGrads[i][j])
			}
		}
	}
	if !gin.Equal(seqIn) {
		t.Error("batched input gradients differ from sequential")
	}
}

// TestBatchAndSequentialCachesIndependent checks that interleaving the two
// paths does not corrupt either cache.
func TestBatchAndSequentialCachesIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewLinear("t", 3, 2, rng)
	x1 := []float64{1, 2, 3}
	xb := mat.FromSlice(2, 3, []float64{4, 5, 6, 7, 8, 9})

	l.Forward(x1)
	l.ForwardBatch(xb) // must not clobber the sample-at-a-time cache
	g := l.Backward([]float64{1, 1})
	want := NewLinear("t", 3, 2, rand.New(rand.NewSource(4)))
	want.Forward(x1)
	wantG := want.Backward([]float64{1, 1})
	for i := range g {
		if g[i] != wantG[i] {
			t.Fatalf("input grad[%d] = %v, want %v (batched call corrupted cache)", i, g[i], wantG[i])
		}
	}
}

// TestBatchShapeMismatchPanics locks in eager shape validation on the
// batched path.
func TestBatchShapeMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewLinear("t", 3, 2, rng)
	for name, fn := range map[string]func(){
		"forward width":  func() { l.ForwardBatch(mat.New(2, 4)) },
		"backward width": func() { l.ForwardBatch(mat.New(2, 3)); l.BackwardBatch(mat.New(2, 3)) },
		"backward rows":  func() { l.ForwardBatch(mat.New(2, 3)); l.BackwardBatch(mat.New(3, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestForwardBackwardAllocationFree locks in the zero-allocation steady
// state of both the sample-at-a-time and batched paths.
func TestForwardBackwardAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMLP("t", []int{12, 64, 64, 1}, ActTanh, rng)
	x := make([]float64, 12)
	xb := mat.New(20, 12)
	xb.Randomize(rng, 1)
	dy := mat.New(20, 1)
	dy.Fill(1)
	one := []float64{1}

	// Warm up so batch scratch reaches its final size.
	m.ForwardBatch(xb)
	m.BackwardBatch(dy)

	if n := testing.AllocsPerRun(20, func() { m.Forward(x) }); n != 0 {
		t.Errorf("Forward allocates %v times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() { m.Forward(x); m.Backward(one) }); n != 0 {
		t.Errorf("Forward+Backward allocates %v times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() { m.ForwardBatch(xb); m.BackwardBatch(dy) }); n != 0 {
		t.Errorf("batched Forward+Backward allocates %v times per call, want 0", n)
	}
}
