package pomdp

import (
	"testing"

	"vtmig/internal/rl"
	"vtmig/internal/stackelberg"
)

// TestFig2aInnerLoopAllocationFree locks in the zero-allocation steady
// state of the full Fig. 2(a) training inner loop on the real game
// environment: action selection, the Stackelberg follower response inside
// Step (via the environment's EvalScratch), rollout collection, GAE, and
// the PPO optimization phase. Before the destination-passing Evaluate
// path, every Step paid for fresh equilibrium-report slices.
func TestFig2aInnerLoopAllocationFree(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int
	}{
		{name: "serial", shards: 1},
		{name: "sharded", shards: 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			env, err := NewGameEnv(Config{
				Game:       stackelberg.DefaultGame(),
				HistoryLen: 4,
				Rounds:     100,
				Reward:     RewardBinary,
				Seed:       1,
			})
			if err != nil {
				t.Fatal(err)
			}
			cfg := rl.DefaultPPOConfig()
			cfg.Shards = tc.shards
			lo, hi := env.ActionBounds()
			agent := rl.NewPPO(env.ObsDim(), env.ActDim(), lo, hi, cfg)
			buf := rl.NewRollout(env.Rounds())

			// episode replays Algorithm 1's per-episode body: K rounds with
			// an optimization phase every |I| rounds.
			episode := func() {
				buf.Reset()
				obs := env.Reset()
				sinceUpdate := 0
				for k := 0; k < env.Rounds(); k++ {
					raw, envAct, logP, value := agent.SelectAction(obs)
					next, reward, done := env.Step(envAct)
					terminal := done || k == env.Rounds()-1
					buf.Add(obs, raw, logP, reward, value, terminal)
					obs = next
					sinceUpdate++
					if sinceUpdate >= 20 || terminal {
						bootstrap := 0.0
						if !terminal {
							bootstrap = agent.Value(obs)
						}
						buf.ComputeGAE(cfg.Gamma, cfg.Lambda, bootstrap)
						agent.Update(buf)
						sinceUpdate = 0
					}
					if done {
						break
					}
				}
			}
			episode() // warm-up: grows env scratch, arenas, minibatch and worker scratch
			if n := testing.AllocsPerRun(3, episode); n != 0 {
				t.Errorf("Fig2a inner loop allocates %v times per episode, want 0 in steady state", n)
			}
		})
	}
}
