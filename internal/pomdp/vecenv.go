package pomdp

import (
	"fmt"

	"vtmig/internal/rl"
)

// vecSeedStride separates the per-instance environment seeds of a
// vectorized environment. It is large so that derived streams stay clear
// of the small additive offsets the experiment harness uses around a base
// seed (eval env Seed+1, restart r Seed+r, sweep cells): instance i of a
// VecEnv never collides with another nearby configuration's stream.
const vecSeedStride = 1_000_003

// VecSeed returns the seed of instance i of a vectorized environment with
// the given base seed. Instance 0 keeps the base seed, so a one-instance
// VecEnv is bit-identical to the classic single environment.
func VecSeed(base int64, i int) int64 { return base + int64(i)*vecSeedStride }

// NewVecEnv builds n independently seeded instances of the POMDP for
// vectorized rollout collection (rl.NewVecTrainer): instance i runs the
// same game and configuration with seed VecSeed(cfg.Seed, i), so the
// per-env episode streams are independent while the whole bundle stays
// reproducible from cfg.Seed (the fourth rule of the determinism
// contract). The instances share the read-only *stackelberg.Game and
// nothing else; each owns its history window, RNG, and evaluation
// scratch, so the collector may step them concurrently.
func NewVecEnv(cfg Config, n int) (*rl.EnvSlice, error) {
	if n < 1 {
		return nil, fmt.Errorf("pomdp: vectorized env needs at least one instance, got %d", n)
	}
	envs := make([]rl.Env, n)
	for i := range envs {
		c := cfg
		c.Seed = VecSeed(cfg.Seed, i)
		env, err := NewGameEnv(c)
		if err != nil {
			return nil, fmt.Errorf("pomdp: building vec env %d: %w", i, err)
		}
		envs[i] = env
	}
	return rl.NewEnvSlice(envs...), nil
}
