package pomdp

import (
	"math"
	"testing"

	"vtmig/internal/mathx"
	"vtmig/internal/stackelberg"
)

func newEnv(t *testing.T, mutate func(*Config)) *GameEnv {
	t.Helper()
	cfg := Config{
		Game:       stackelberg.DefaultGame(),
		HistoryLen: 4,
		Rounds:     100,
		Reward:     RewardBinary,
		Seed:       1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	env, err := NewGameEnv(cfg)
	if err != nil {
		t.Fatalf("NewGameEnv: %v", err)
	}
	return env
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil game", func(c *Config) { c.Game = nil }},
		{"zero history", func(c *Config) { c.HistoryLen = 0 }},
		{"zero rounds", func(c *Config) { c.Rounds = 0 }},
		{"bad reward", func(c *Config) { c.Reward = RewardKind(0) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := Config{
				Game:       stackelberg.DefaultGame(),
				HistoryLen: 4,
				Rounds:     100,
				Reward:     RewardBinary,
			}
			tt.mutate(&cfg)
			if _, err := NewGameEnv(cfg); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestObsDimMatchesPaper(t *testing.T) {
	// L=4, N=2 ⇒ observation width 4×(1+2) = 12.
	env := newEnv(t, nil)
	if got := env.ObsDim(); got != 12 {
		t.Errorf("ObsDim = %d, want 12", got)
	}
	if got := len(env.Reset()); got != 12 {
		t.Errorf("len(Reset()) = %d, want 12", got)
	}
}

func TestActionBoundsArePriceRange(t *testing.T) {
	env := newEnv(t, nil)
	lo, hi := env.ActionBounds()
	if lo[0] != 5 || hi[0] != 50 {
		t.Errorf("bounds = [%v, %v], want [5, 50]", lo[0], hi[0])
	}
	if env.ActDim() != 1 {
		t.Errorf("ActDim = %d, want 1", env.ActDim())
	}
}

func TestObservationsNormalized(t *testing.T) {
	env := newEnv(t, nil)
	obs := env.Reset()
	for i := 0; i < 50; i++ {
		for j, v := range obs {
			if v < -1e-9 || v > 1.5 {
				t.Fatalf("obs[%d] = %v outside normalized range", j, v)
			}
		}
		obs, _, _ = env.Step([]float64{5 + float64(i%45)})
	}
}

func TestEpisodeTerminatesAfterKRounds(t *testing.T) {
	env := newEnv(t, func(c *Config) { c.Rounds = 5 })
	env.Reset()
	var done bool
	for k := 0; k < 5; k++ {
		if done {
			t.Fatalf("done before round %d", k)
		}
		_, _, done = env.Step([]float64{25})
	}
	if !done {
		t.Error("episode not done after K rounds")
	}
}

func TestStepAfterDonePanics(t *testing.T) {
	env := newEnv(t, func(c *Config) { c.Rounds = 1 })
	env.Reset()
	env.Step([]float64{25})
	defer func() {
		if recover() == nil {
			t.Fatal("Step after done did not panic")
		}
	}()
	env.Step([]float64{25})
}

func TestBinaryRewardSemantics(t *testing.T) {
	env := newEnv(t, nil)
	env.Reset()
	// First round always achieves a new best ⇒ reward 1.
	_, r1, _ := env.Step([]float64{20})
	if r1 != 1 {
		t.Errorf("first-round reward = %v, want 1", r1)
	}
	// A clearly worse price ⇒ reward 0.
	_, r2, _ := env.Step([]float64{5.01})
	if r2 != 0 {
		t.Errorf("worse-price reward = %v, want 0", r2)
	}
	// Matching/improving the best ⇒ reward 1 (Eq. 12 uses ≥).
	_, r3, _ := env.Step([]float64{25})
	if r3 != 1 {
		t.Errorf("better-price reward = %v, want 1", r3)
	}
}

func TestBestUtilityTracksMaximum(t *testing.T) {
	env := newEnv(t, nil)
	env.Reset()
	env.Step([]float64{10})
	u10 := env.LastOutcome().MSPUtility
	env.Step([]float64{25})
	u25 := env.LastOutcome().MSPUtility
	env.Step([]float64{7})
	if got := env.BestUtility(); got != math.Max(u10, u25) {
		t.Errorf("BestUtility = %v, want %v", got, math.Max(u10, u25))
	}
}

func TestShapedRewardNormalized(t *testing.T) {
	env := newEnv(t, func(c *Config) { c.Reward = RewardShaped })
	env.Reset()
	// At the oracle price, shaped reward ≈ 1.
	oracle := env.cfg.Game.Solve().Price
	_, r, _ := env.Step([]float64{oracle})
	if !mathx.AlmostEqual(r, 1, 1e-6) {
		t.Errorf("shaped reward at oracle price = %v, want ≈1", r)
	}
	// At a poor price, shaped reward must be lower but positive.
	_, r2, _ := env.Step([]float64{5.5})
	if r2 >= r || r2 <= 0 {
		t.Errorf("shaped reward at poor price = %v, want in (0, %v)", r2, r)
	}
}

func TestBestPersistsAcrossEpisodesByDefault(t *testing.T) {
	// The paper's U_best is the highest utility obtained "until round k"
	// over the whole run; a per-episode reset would let any constant
	// price earn maximal return.
	env := newEnv(t, nil)
	env.Reset()
	env.Step([]float64{25})
	best := env.BestUtility()
	if best <= 0 {
		t.Fatalf("BestUtility = %v, want > 0", best)
	}
	env.Reset()
	if env.BestUtility() != best {
		t.Errorf("BestUtility after Reset = %v, want %v (persistent)", env.BestUtility(), best)
	}
	// A poor price must not be rewarded in the new episode.
	_, r, _ := env.Step([]float64{5.01})
	if r != 0 {
		t.Errorf("poor-price reward after Reset = %v, want 0", r)
	}
}

func TestResetBestPerEpisodeOption(t *testing.T) {
	env := newEnv(t, func(c *Config) { c.ResetBestPerEpisode = true })
	env.Reset()
	env.Step([]float64{25})
	env.Reset()
	// With the option set, the first step of a new episode is a new best.
	_, r, _ := env.Step([]float64{5.01})
	if r != 1 {
		t.Errorf("first reward after Reset = %v, want 1", r)
	}
}

func TestBinaryToleranceBand(t *testing.T) {
	// With a 1% band, a price yielding utility within 1% of the best must
	// still be rewarded.
	env := newEnv(t, func(c *Config) { c.BestTolFrac = 0.01 })
	env.Reset()
	oracle := stackelberg.DefaultGame().Solve().Price
	env.Step([]float64{oracle})
	_, r, _ := env.Step([]float64{oracle + 0.05})
	if r != 1 {
		t.Errorf("near-best reward = %v, want 1 within tolerance band", r)
	}
}

func TestBinaryExactModeRejectsNearMiss(t *testing.T) {
	env := newEnv(t, func(c *Config) { c.BestTolFrac = -1 }) // exact ≥
	env.Reset()
	oracle := stackelberg.DefaultGame().Solve().Price
	env.Step([]float64{oracle})
	_, r, _ := env.Step([]float64{oracle + 0.05})
	if r != 0 {
		t.Errorf("near-miss reward in exact mode = %v, want 0", r)
	}
}

func TestHistorySlidesOldestFirst(t *testing.T) {
	env := newEnv(t, func(c *Config) { c.HistoryLen = 2 })
	env.Reset()
	// Play two known prices; the observation must contain them in order.
	obs, _, _ := env.Step([]float64{50}) // normalized price 1
	obs, _, _ = env.Step([]float64{5})   // normalized price 0
	rowWidth := 1 + env.game.N()
	if got := obs[0]; !mathx.AlmostEqual(got, 1, 1e-9) {
		t.Errorf("older price slot = %v, want 1 (price 50)", got)
	}
	if got := obs[rowWidth]; !mathx.AlmostEqual(got, 0, 1e-9) {
		t.Errorf("newer price slot = %v, want 0 (price 5)", got)
	}
}

func TestOracleUtilityMatchesGameSolve(t *testing.T) {
	env := newEnv(t, nil)
	want := stackelberg.DefaultGame().Solve().MSPUtility
	if !mathx.AlmostEqual(env.OracleUtility(), want, 1e-9) {
		t.Errorf("OracleUtility = %v, want %v", env.OracleUtility(), want)
	}
}

func TestActionLengthPanics(t *testing.T) {
	env := newEnv(t, nil)
	env.Reset()
	defer func() {
		if recover() == nil {
			t.Fatal("Step with 2-dim action did not panic")
		}
	}()
	env.Step([]float64{1, 2})
}

func TestDeterministicWithSeed(t *testing.T) {
	e1 := newEnv(t, func(c *Config) { c.Seed = 42 })
	e2 := newEnv(t, func(c *Config) { c.Seed = 42 })
	o1, o2 := e1.Reset(), e2.Reset()
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("same seed produced different initial histories at %d", i)
		}
	}
}

func TestRewardKindString(t *testing.T) {
	if RewardBinary.String() != "binary" || RewardShaped.String() != "shaped" {
		t.Error("RewardKind.String mismatch")
	}
}

func TestUnconstrainedGameDemandScale(t *testing.T) {
	// With BMax <= 0 the demand normalization falls back to the demand at
	// the minimum price; observations must stay bounded.
	g := stackelberg.DefaultGame()
	g.BMax = 0
	env, err := NewGameEnv(Config{Game: g, HistoryLen: 2, Rounds: 10, Reward: RewardBinary, Seed: 1})
	if err != nil {
		t.Fatalf("NewGameEnv: %v", err)
	}
	obs := env.Reset()
	for k := 0; k < 10; k++ {
		for i, v := range obs {
			if v < -1e-9 || v > 1+1e-9 {
				t.Fatalf("round %d: obs[%d] = %v outside [0, 1]", k, i, v)
			}
		}
		var done bool
		obs, _, done = env.Step([]float64{5 + float64(k*5)})
		if done {
			break
		}
	}
}
