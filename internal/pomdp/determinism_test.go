package pomdp

import (
	"math"
	"math/rand"
	"testing"

	"vtmig/internal/channel"
	"vtmig/internal/rl"
	"vtmig/internal/stackelberg"
)

// randomGame draws a valid randomized Stackelberg game: 1–5 followers
// with random immersion coefficients and data sizes, random cost, and a
// randomly slack or binding capacity.
func randomGame(t *testing.T, rng *rand.Rand) *stackelberg.Game {
	t.Helper()
	n := 1 + rng.Intn(5)
	vmus := make([]stackelberg.VMU, n)
	for i := range vmus {
		vmus[i] = stackelberg.VMU{
			ID:       i,
			Alpha:    5 + rng.Float64()*15,
			DataSize: 0.5 + rng.Float64()*2.5,
		}
	}
	bmax := 0.0
	if rng.Intn(2) == 0 {
		bmax = 0.2 + rng.Float64()*0.8
	}
	g, err := stackelberg.NewGame(vmus, channel.DefaultParams(), 4+rng.Float64()*4, 50, bmax)
	if err != nil {
		t.Fatalf("randomized game invalid: %v", err)
	}
	return g
}

// trainBriefly runs a short end-to-end training (environment, trainer,
// PPO with the given shard count) and returns the agent and per-episode
// returns.
func trainBriefly(t *testing.T, game *stackelberg.Game, seed int64, shards int) (*rl.PPO, []float64) {
	t.Helper()
	env, err := NewGameEnv(Config{
		Game:       game,
		HistoryLen: 3,
		Rounds:     40,
		Reward:     RewardBinary,
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := rl.DefaultPPOConfig()
	cfg.Seed = seed
	cfg.Shards = shards
	cfg.MiniBatch = 10
	lo, hi := env.ActionBounds()
	agent := rl.NewPPO(env.ObsDim(), env.ActDim(), lo, hi, cfg)
	trainer := rl.NewTrainer(env, agent, rl.TrainerConfig{
		Episodes:         2,
		RoundsPerEpisode: 40,
		UpdateEvery:      10,
	})
	stats := trainer.Run()
	returns := make([]float64, len(stats))
	for i, s := range stats {
		returns[i] = s.Return
	}
	return agent, returns
}

// TestShardedTrainingBitIdenticalOnRandomGames extends the unit-level
// shard determinism tests to the real POMDP: on randomized games, a full
// (short) training run with sharded PPO updates must reproduce the serial
// run's weights and episode returns bit for bit.
func TestShardedTrainingBitIdenticalOnRandomGames(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		game := randomGame(t, rng)
		seed := int64(1000 + trial)
		shards := []int{2, 4, 7}[trial%3]

		serial, serialRet := trainBriefly(t, game, seed, 1)
		sharded, shardedRet := trainBriefly(t, game, seed, shards)

		for i := range serialRet {
			if math.Float64bits(serialRet[i]) != math.Float64bits(shardedRet[i]) {
				t.Fatalf("trial %d (N=%d, shards=%d): episode %d return %v vs %v",
					trial, game.N(), shards, i, serialRet[i], shardedRet[i])
			}
		}
		sp, pp := serial.Params(), sharded.Params()
		for i := range sp {
			for j := range sp[i].Value {
				if math.Float64bits(sp[i].Value[j]) != math.Float64bits(pp[i].Value[j]) {
					t.Fatalf("trial %d (N=%d, shards=%d): param %q element %d: %v vs %v",
						trial, game.N(), shards, sp[i].Name, j, sp[i].Value[j], pp[i].Value[j])
				}
			}
		}
	}
}
