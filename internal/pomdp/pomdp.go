// Package pomdp wraps the Stackelberg pricing game as the partially
// observable Markov decision process of Section IV: the MSP agent observes
// only the last L rounds of (price, bandwidth-demand) pairs, acts by
// choosing the next unit bandwidth price in [C, pmax], and receives the
// binary reward of Eq. (12).
package pomdp

import (
	"fmt"
	"math"
	"math/rand"

	"vtmig/internal/mathx"
	"vtmig/internal/nn"
	"vtmig/internal/rl"
	"vtmig/internal/stackelberg"
)

// RewardKind selects the reward signal.
type RewardKind int

const (
	// RewardBinary is Eq. (12): R = 1 when the MSP's utility reaches a new
	// episode-best, else 0.
	RewardBinary RewardKind = iota + 1
	// RewardShaped is the ablation variant: the MSP's utility normalized
	// by the closed-form equilibrium utility, a dense signal in ≈[0, 1].
	RewardShaped
)

// String returns the reward kind's name.
func (r RewardKind) String() string {
	switch r {
	case RewardBinary:
		return "binary"
	case RewardShaped:
		return "shaped"
	default:
		return fmt.Sprintf("RewardKind(%d)", int(r))
	}
}

// Config parameterizes the environment.
type Config struct {
	// Game is the underlying Stackelberg game.
	Game *stackelberg.Game
	// HistoryLen is L, the number of past rounds in the observation
	// (paper: 4).
	HistoryLen int
	// Rounds is K, the episode length (paper: 100).
	Rounds int
	// Reward selects the reward signal (paper: RewardBinary).
	Reward RewardKind
	// ResetBestPerEpisode resets the U_best reference of Eq. (12) at every
	// episode boundary. The paper defines U_best as "the highest utility
	// that the MSP has obtained until round k", i.e. persistent across the
	// whole training run (false, the default) — with a per-episode reset
	// the binary reward degenerates: any constant price trivially matches
	// its own best every round.
	ResetBestPerEpisode bool
	// BestTolFrac widens Eq. (12) to R = 1{U_s ≥ U_best·(1 − tol)}: with a
	// continuous action space, bit-exact equality with the historical best
	// is unreachable, so a small band is required for the return to reach
	// the max round K as in Fig. 2(a). Zero selects the default (1e-3);
	// negative values demand exact ≥.
	BestTolFrac float64
	// Seed drives the random initial history of each episode.
	Seed int64
}

// defaultBestTolFrac is the tolerance band applied when BestTolFrac == 0.
// 0.3 % keeps the reward discriminating (converged prices land within
// ≈1–3 price units of the optimum, costing <0.1 % utility) while staying
// dense enough for PPO to find the band in the capacity-bound regime of
// Fig. 3(c).
const defaultBestTolFrac = 3e-3

// bestTolFrac resolves the configured tolerance.
func (c Config) bestTolFrac() float64 {
	if c.BestTolFrac == 0 {
		return defaultBestTolFrac
	}
	if c.BestTolFrac < 0 {
		return 0
	}
	return c.BestTolFrac
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Game == nil {
		return fmt.Errorf("pomdp: nil game")
	}
	if err := c.Game.Validate(); err != nil {
		return err
	}
	if c.HistoryLen <= 0 {
		return fmt.Errorf("pomdp: history length must be positive, got %d", c.HistoryLen)
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("pomdp: rounds must be positive, got %d", c.Rounds)
	}
	switch c.Reward {
	case RewardBinary, RewardShaped:
	default:
		return fmt.Errorf("pomdp: unknown reward kind %d", int(c.Reward))
	}
	return nil
}

// GameEnv is the POMDP. It implements rl.Env and rl.SnapshotEnv: its
// cross-episode state — the RNG stream position behind the random initial
// histories and the running-best utility behind the binary reward — can
// be checkpointed at an episode boundary and restored into a freshly
// built, identically configured instance (everything else is rewritten by
// the next Reset).
type GameEnv struct {
	cfg  Config
	game *stackelberg.Game
	// rng draws from src, a counting source, so the environment stream is
	// checkpointable as a (seed, calls) pair.
	rng *rand.Rand
	src *mathx.CountingSource

	// enc holds the last L rounds as the normalized observation window
	// (see Encoder); the encoding is shared with external belief-state
	// holders such as the simulator's online pricer.
	enc   *Encoder
	round int
	// best tracks the running best MSP utility behind the binary reward
	// of Eq. (12).
	best *BestTracker
	// oracleUs is the closed-form equilibrium utility used for reward
	// shaping and regret reporting.
	oracleUs float64

	// scratch backs the per-round equilibrium evaluation; reusing it keeps
	// Step and Reset allocation-free in steady state.
	scratch stackelberg.EvalScratch

	last stackelberg.Equilibrium
}

var (
	_ rl.Env         = (*GameEnv)(nil)
	_ rl.SnapshotEnv = (*GameEnv)(nil)
)

// NewGameEnv builds the environment.
func NewGameEnv(cfg Config) (*GameEnv, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := mathx.NewCountingSource(cfg.Seed)
	env := &GameEnv{
		cfg:      cfg,
		game:     cfg.Game,
		rng:      rand.New(src),
		src:      src,
		oracleUs: cfg.Game.Solve().MSPUtility,
		best:     NewBestTracker(cfg.BestTolFrac),
	}
	enc, err := NewEncoder(cfg.HistoryLen, cfg.Game.N(), cfg.Game.Cost, cfg.Game.PMax, demandScale(cfg.Game))
	if err != nil {
		return nil, err
	}
	env.enc = enc
	return env, nil
}

// ObsDim is L × (1 + N): L rounds of one price plus N demands.
func (e *GameEnv) ObsDim() int { return e.enc.ObsDim() }

// ActDim is 1: the unit bandwidth price.
func (e *GameEnv) ActDim() int { return 1 }

// ActionBounds returns [C, pmax], the action space of Section IV-A.2.
func (e *GameEnv) ActionBounds() (lo, hi []float64) {
	return []float64{e.game.Cost}, []float64{e.game.PMax}
}

// Rounds returns K.
func (e *GameEnv) Rounds() int { return e.cfg.Rounds }

// Config returns the environment's configuration — e.g. to derive a
// vectorized bundle of the same environment (NewVecEnv) without
// re-assembling the fields.
func (e *GameEnv) Config() Config { return e.cfg }

// OracleUtility returns the closed-form Stackelberg-equilibrium MSP
// utility, the dashed reference line of Fig. 2(b).
func (e *GameEnv) OracleUtility() float64 { return e.oracleUs }

// Reset starts a new episode with a random initial history (the paper
// generates p_{k-L}, b_{k-L} randomly during the initial stage).
func (e *GameEnv) Reset() []float64 {
	e.round = 0
	if e.cfg.ResetBestPerEpisode {
		e.best.Reset()
	}
	for i := 0; i < e.cfg.HistoryLen; i++ {
		price := e.game.Cost + e.rng.Float64()*(e.game.PMax-e.game.Cost)
		eq := e.game.EvaluateInto(&e.scratch, price)
		e.enc.Record(eq.Price, eq.Demands)
	}
	return e.enc.Obs()
}

// Step applies the pricing action, lets the followers best-respond, and
// returns the next observation, the reward, and episode termination.
func (e *GameEnv) Step(action []float64) ([]float64, float64, bool) {
	if len(action) != 1 {
		panic(fmt.Sprintf("pomdp: action length %d, want 1", len(action)))
	}
	if e.round >= e.cfg.Rounds {
		panic("pomdp: Step called on finished episode; call Reset")
	}
	eq := e.game.EvaluateInto(&e.scratch, action[0])
	e.last = eq

	// Eq. (12): reward 1 iff the utility reaches the historical best,
	// within the configured tolerance band.
	reward := e.best.Observe(eq.MSPUtility)
	if e.cfg.Reward == RewardShaped {
		if e.oracleUs > 0 {
			reward = eq.MSPUtility / e.oracleUs
		} else {
			reward = eq.MSPUtility
		}
	}

	// Slide the history window: the encoder rotates the oldest row buffer
	// to the end and rewrites it in place.
	e.enc.Record(eq.Price, eq.Demands)

	e.round++
	done := e.round >= e.cfg.Rounds
	return e.enc.Obs(), reward, done
}

// EnvSnapshot implements rl.SnapshotEnv: it captures the environment's
// cross-episode state at an episode boundary — the RNG stream position
// and the running-best utility of Eq. (12), which persists across
// episodes unless ResetBestPerEpisode is set.
func (e *GameEnv) EnvSnapshot() nn.EnvState {
	st := nn.EnvState{RNG: nn.RNGState{Seed: e.cfg.Seed, Calls: e.src.Calls(), State: e.src.StateSnapshot()}}
	if best := e.best.Best(); !math.IsInf(best, -1) {
		st.Best, st.BestSet = best, true
	}
	return st
}

// EnvRestore implements rl.SnapshotEnv: it rewinds a freshly built
// environment to a captured state. The configured seed must match the
// snapshot's — a mismatch means the checkpoint belongs to a different
// environment stream.
func (e *GameEnv) EnvRestore(st nn.EnvState) error {
	if st.RNG.Seed != e.cfg.Seed {
		return fmt.Errorf("pomdp: checkpoint stream seed %d, environment configured with %d", st.RNG.Seed, e.cfg.Seed)
	}
	src, err := mathx.NewCountingSourceFromState(st.RNG.Seed, st.RNG.Calls, st.RNG.State)
	if err != nil {
		return fmt.Errorf("pomdp: restoring environment RNG: %w", err)
	}
	e.src = src
	e.rng = rand.New(e.src)
	if st.BestSet {
		e.best.SetBest(st.Best)
	} else {
		e.best.Reset()
	}
	e.round = 0
	return nil
}

// LastOutcome returns the full equilibrium report of the most recent round
// (for metric collection). Its slice fields alias environment-owned
// scratch overwritten by the next Step or Reset; callers that retain the
// report across rounds must Clone it.
func (e *GameEnv) LastOutcome() stackelberg.Equilibrium { return e.last }

// BestUtility returns the best MSP utility seen this episode.
func (e *GameEnv) BestUtility() float64 { return e.best.Best() }

// demandScale returns the observation normalization constant for a game's
// demands: Bmax when configured, otherwise the demand at the minimum
// price (an upper bound). GameEnv and external encoders over the same
// game (the simulator's online pricer) share it through NewEncoder.
func demandScale(g *stackelberg.Game) float64 {
	if g.BMax > 0 {
		return g.BMax
	}
	return g.TotalDemand(g.Cost) + 1e-9
}
