package pomdp

import (
	"fmt"
	"math"

	"vtmig/internal/stackelberg"
)

// Encoder is the observation encoding of the POMDP, factored out of
// GameEnv so that external belief-state holders — most prominently the
// simulator's online continual-learning pricer, which feeds live pricing
// rounds instead of training-game rounds — produce observations in exactly
// the layout the agent was trained on.
//
// The encoder keeps the last L rounds of normalized (price, demands)
// records, oldest first; each record is one row of width 1+slots: the
// price mapped to [0, 1] over [cost, pmax], followed by each demand
// divided by the demand reference scale. The L row buffers are allocated
// once and recycled: recording a round rotates the oldest row to the end
// and rewrites it in place, so Record and Obs do not allocate.
type Encoder struct {
	cost, pmax, scale float64

	// history holds the L rows, oldest first.
	history [][]float64
	obs     []float64
}

// NewEncoder builds an encoder for a window of historyLen rounds with
// slots demand entries per round, normalizing prices over [cost, pmax]
// and demands by demandScale. The window starts zeroed; GameEnv (and the
// online pricer) warm it with historyLen recorded rounds before the first
// observation is read.
func NewEncoder(historyLen, slots int, cost, pmax, demandScale float64) (*Encoder, error) {
	if historyLen <= 0 {
		return nil, fmt.Errorf("pomdp: encoder history length must be positive, got %d", historyLen)
	}
	if slots <= 0 {
		return nil, fmt.Errorf("pomdp: encoder needs at least one demand slot, got %d", slots)
	}
	if math.IsNaN(cost) || math.IsNaN(pmax) || pmax <= cost {
		return nil, fmt.Errorf("pomdp: encoder price range [%g, %g] inverted", cost, pmax)
	}
	if !(demandScale > 0) {
		return nil, fmt.Errorf("pomdp: encoder demand scale %g must be positive", demandScale)
	}
	e := &Encoder{
		cost:    cost,
		pmax:    pmax,
		scale:   demandScale,
		history: make([][]float64, historyLen),
		obs:     make([]float64, historyLen*(1+slots)),
	}
	rows := make([]float64, historyLen*(1+slots))
	for i := range e.history {
		e.history[i] = rows[i*(1+slots) : (i+1)*(1+slots)]
	}
	return e, nil
}

// ObsDim is L × (1 + slots).
func (e *Encoder) ObsDim() int { return len(e.obs) }

// Record slides the window by one round: the oldest row is rotated to the
// newest slot and rewritten with the normalized (price, demands) record.
// When the round has fewer demands than the encoder has slots (a live
// round with fewer participants than the training game), the remaining
// slots read zero — the encoding of a VMU that buys no bandwidth; extra
// demands beyond the slot count are dropped.
func (e *Encoder) Record(price float64, demands []float64) {
	row := e.history[0]
	copy(e.history, e.history[1:])
	e.history[len(e.history)-1] = row

	row[0] = (price - e.cost) / (e.pmax - e.cost)
	slots := len(row) - 1
	for i := 0; i < slots; i++ {
		if i < len(demands) {
			row[1+i] = demands[i] / e.scale
		} else {
			row[1+i] = 0
		}
	}
}

// Obs flattens the window, oldest round first, into the encoder-owned
// observation slice (overwritten by the next Obs call after a Record).
func (e *Encoder) Obs() []float64 {
	i := 0
	for _, row := range e.history {
		i += copy(e.obs[i:], row)
	}
	return e.obs
}

// HistoryLen returns the number of rounds the window holds.
func (e *Encoder) HistoryLen() int { return len(e.history) }

// Snapshot deep-copies the belief window, oldest round first, in the
// normalized row layout Record writes. The rows go into a checkpoint's
// pricer section so a restored holder resumes with the exact belief the
// snapshotted one had (determinism contract rule 6).
func (e *Encoder) Snapshot() [][]float64 {
	rows := make([][]float64, len(e.history))
	flat := make([]float64, len(e.obs))
	width := len(e.obs) / len(e.history)
	for i, row := range e.history {
		rows[i] = flat[i*width : (i+1)*width]
		copy(rows[i], row)
	}
	return rows
}

// Restore overwrites the belief window with checkpointed rows (oldest
// first, as produced by Snapshot). The rows must match the encoder's
// window exactly; values are copied, the caller keeps ownership.
func (e *Encoder) Restore(rows [][]float64) error {
	if len(rows) != len(e.history) {
		return fmt.Errorf("pomdp: restoring encoder window: got %d rows, want %d", len(rows), len(e.history))
	}
	width := len(e.obs) / len(e.history)
	for i, row := range rows {
		if len(row) != width {
			return fmt.Errorf("pomdp: restoring encoder window: row %d has width %d, want %d", i, len(row), width)
		}
	}
	for i, row := range rows {
		copy(e.history[i], row)
	}
	return nil
}

// Reset zeroes the window (a fresh belief with no recorded rounds).
func (e *Encoder) Reset() {
	for _, row := range e.history {
		for i := range row {
			row[i] = 0
		}
	}
}

// NewGameEncoder builds an Encoder that reproduces the observation
// encoding of a GameEnv over the given game: one demand slot per VMU,
// prices normalized over [Cost, PMax], and demands normalized by the
// game's demand scale (BMax when configured, otherwise the total demand
// at the minimum price). An agent trained on a GameEnv over g reads
// observations from this encoder in its training layout.
func NewGameEncoder(historyLen int, g *stackelberg.Game) (*Encoder, error) {
	if g == nil {
		return nil, fmt.Errorf("pomdp: nil game")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return NewEncoder(historyLen, g.N(), g.Cost, g.PMax, demandScale(g))
}

// BestTracker maintains the running best leader utility behind the binary
// reward of Eq. (12): Observe returns 1 when a utility reaches the best
// seen so far (within the tolerance band) and 0 otherwise, updating the
// best afterwards. GameEnv uses one per training run; the simulator's
// online pricer uses one across live pricing rounds.
type BestTracker struct {
	best float64
	tol  float64
}

// NewBestTracker builds a tracker with the Config.BestTolFrac semantics:
// tolFrac 0 selects the default band, negative demands exact ≥.
func NewBestTracker(tolFrac float64) *BestTracker {
	return &BestTracker{best: math.Inf(-1), tol: Config{BestTolFrac: tolFrac}.bestTolFrac()}
}

// Observe scores one round's leader utility against the running best —
// the binary reward of Eq. (12) with the tolerance band — and then folds
// the utility into the best.
func (t *BestTracker) Observe(us float64) float64 {
	threshold := t.best
	if t.tol > 0 && !math.IsInf(threshold, -1) {
		threshold -= t.tol * math.Max(math.Abs(t.best), 1)
	}
	var reward float64
	if us >= threshold {
		reward = 1
	}
	if us > t.best {
		t.best = us
	}
	return reward
}

// Best returns the best utility observed so far (−Inf before the first
// Observe).
func (t *BestTracker) Best() float64 { return t.best }

// Reset forgets the running best.
func (t *BestTracker) Reset() { t.best = math.Inf(-1) }

// SetBest overwrites the running best with a checkpointed value —
// restoring the Eq. (12) reference is part of resuming a training stream
// bit-identically (GameEnv.EnvRestore).
func (t *BestTracker) SetBest(best float64) { t.best = best }
