package pomdp

import (
	"math"
	"testing"

	"vtmig/internal/stackelberg"
)

// TestGameEncoderMatchesEnv pins that NewGameEncoder, fed the same round
// outcomes as a GameEnv, reproduces the environment's observations bit
// for bit — the property the simulator's online pricer relies on to keep
// a warm-started agent on its training observation layout.
func TestGameEncoderMatchesEnv(t *testing.T) {
	game := stackelberg.DefaultGame()
	env, err := NewGameEnv(Config{
		Game:       game,
		HistoryLen: 4,
		Rounds:     50,
		Reward:     RewardBinary,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewGameEncoder(4, game)
	if err != nil {
		t.Fatal(err)
	}
	if enc.ObsDim() != env.ObsDim() {
		t.Fatalf("encoder ObsDim %d, env %d", enc.ObsDim(), env.ObsDim())
	}

	// Replay the env's episode through the external encoder: after every
	// Step, feeding the same (price, demands) outcome must give the same
	// observation bits.
	obs := env.Reset()
	var scratch stackelberg.EvalScratch
	// Re-warm the encoder with the env's initial history by replaying the
	// same RNG-driven warm-up prices is not possible from outside, so
	// compare from a synchronized state instead: record HistoryLen rounds
	// through both.
	act := []float64{0}
	for k := 0; k < 10; k++ {
		price := game.Cost + float64(k)*(game.PMax-game.Cost)/10
		act[0] = price
		obs, _, _ = env.Step(act)
		eq := game.EvaluateInto(&scratch, price)
		enc.Record(eq.Price, eq.Demands)
		if k < 4-1 {
			continue // encoder window not yet fully synchronized
		}
		got := enc.Obs()
		for i := range obs {
			if math.Float64bits(obs[i]) != math.Float64bits(got[i]) {
				t.Fatalf("round %d obs[%d]: encoder %v, env %v", k, i, got[i], obs[i])
			}
		}
	}
}

// TestEncoderShortRound pins the padding semantics: a round with fewer
// demands than slots zero-fills the remaining slots, and extra demands
// are dropped.
func TestEncoderShortRound(t *testing.T) {
	enc, err := NewEncoder(2, 3, 5, 50, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	enc.Record(27.5, []float64{0.1})
	obs := enc.Obs()
	// Window is oldest-first: row 0 still zero, row 1 is the record.
	want := []float64{0, 0, 0, 0, (27.5 - 5) / 45, 0.1 / 0.5, 0, 0}
	if len(obs) != len(want) {
		t.Fatalf("obs length %d, want %d", len(obs), len(want))
	}
	for i := range want {
		if obs[i] != want[i] {
			t.Fatalf("obs[%d] = %v, want %v", i, obs[i], want[i])
		}
	}
	// A long round drops the extra demands rather than writing past the
	// row.
	enc.Record(5, []float64{1, 2, 3, 4, 5})
	obs = enc.Obs()
	// The window rotated: row 0 is now the first record, row 1 the long
	// one, whose fourth and fifth demands were dropped.
	if obs[0] != (27.5-5)/45 || obs[4] != 0 || obs[7] != 3/0.5 {
		t.Fatalf("after long record: %v", obs)
	}
	enc.Reset()
	for i, v := range enc.Obs() {
		if v != 0 {
			t.Fatalf("after Reset obs[%d] = %v", i, v)
		}
	}
}

// TestEncoderValidation pins that bad encoder parameters error instead of
// panicking.
func TestEncoderValidation(t *testing.T) {
	cases := []struct {
		l, slots          int
		cost, pmax, scale float64
	}{
		{0, 2, 5, 50, 1},
		{4, 0, 5, 50, 1},
		{4, 2, 50, 5, 1},
		{4, 2, 5, 50, 0},
		{4, 2, 5, 50, -1},
		{4, 2, math.NaN(), 50, 1},
	}
	for _, c := range cases {
		if _, err := NewEncoder(c.l, c.slots, c.cost, c.pmax, c.scale); err == nil {
			t.Errorf("NewEncoder(%d, %d, %g, %g, %g) accepted", c.l, c.slots, c.cost, c.pmax, c.scale)
		}
	}
	if _, err := NewGameEncoder(4, nil); err == nil {
		t.Error("NewGameEncoder accepted nil game")
	}
}

// TestBestTrackerBinaryReward pins the Eq. (12) semantics: 1 on a new
// (or band-matching) best, 0 otherwise, with the tolerance band applied
// relative to the running best.
func TestBestTrackerBinaryReward(t *testing.T) {
	tr := NewBestTracker(-1) // exact ≥
	if r := tr.Observe(10); r != 1 {
		t.Fatalf("first observation reward %v, want 1 (anything beats -Inf)", r)
	}
	if r := tr.Observe(9); r != 0 {
		t.Fatalf("below best rewarded %v", r)
	}
	if r := tr.Observe(10); r != 1 {
		t.Fatalf("matching best rewarded %v, want 1", r)
	}
	if tr.Best() != 10 {
		t.Fatalf("best %v, want 10", tr.Best())
	}

	band := NewBestTracker(0.01)
	band.Observe(100)
	if r := band.Observe(99.5); r != 1 {
		t.Fatalf("in-band utility rewarded %v, want 1", r)
	}
	if r := band.Observe(98); r != 0 {
		t.Fatalf("out-of-band utility rewarded %v, want 0", r)
	}
	band.Reset()
	if !math.IsInf(band.Best(), -1) {
		t.Fatalf("best after Reset %v", band.Best())
	}
}
