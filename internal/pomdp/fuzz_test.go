package pomdp

import "testing"

// FuzzVecSeed pins the vectorized-environment seed derivation: for one
// base seed, distinct instance indices must never collide (instance
// streams are what keep per-env episodes independent, determinism
// contract rule 4), instance 0 must keep the base seed, and the
// derivation must stay collision-free across the small additive base
// offsets the experiment harness uses (restart r trains at Seed+r, the
// evaluation env at Seed+1).
func FuzzVecSeed(f *testing.F) {
	f.Add(int64(1), 0, 1)
	f.Add(int64(123), 3, 7)
	f.Add(int64(-9), 100, 99)
	f.Add(int64(1<<40), 0, 1024)
	f.Fuzz(func(t *testing.T, base int64, i, j int) {
		const maxIndex = 1 << 20 // far above any realistic CollectEnvs
		i &= maxIndex - 1
		j &= maxIndex - 1
		if VecSeed(base, 0) != base {
			t.Fatalf("VecSeed(%d, 0) = %d, want the base seed", base, VecSeed(base, 0))
		}
		if i != j && VecSeed(base, i) == VecSeed(base, j) {
			t.Fatalf("VecSeed(%d, %d) == VecSeed(%d, %d) == %d", base, i, base, j, VecSeed(base, i))
		}
		// Nearby base seeds (the harness's Seed+r offsets, r well below the
		// stride) must not alias another instance's stream.
		for off := int64(1); off <= 8; off++ {
			if i != j && VecSeed(base+off, i) == VecSeed(base, j) {
				t.Fatalf("VecSeed(%d, %d) collides with VecSeed(%d, %d)", base+off, i, base, j)
			}
		}
	})
}
