package pomdp

import (
	"math"
	"math/rand"
	"testing"

	"vtmig/internal/rl"
	"vtmig/internal/stackelberg"
)

// TestVecEnvInstanceZeroMatchesClassic pins that instance 0 of a
// vectorized environment keeps the base seed: its episode stream is
// bit-identical to the classic single environment's.
func TestVecEnvInstanceZeroMatchesClassic(t *testing.T) {
	cfg := Config{
		Game:       stackelberg.DefaultGame(),
		HistoryLen: 4,
		Rounds:     20,
		Reward:     RewardBinary,
		Seed:       7,
	}
	vec, err := NewVecEnv(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	classic, err := NewGameEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v0 := vec.EnvAt(0)
	a, b := classic.Reset(), v0.Reset()
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("initial obs element %d: %v vs %v", i, a[i], b[i])
		}
	}
	act := []float64{12.5}
	for k := 0; k < 20; k++ {
		ao, ar, ad := classic.Step(act)
		bo, br, bd := v0.Step(act)
		if ar != br || ad != bd {
			t.Fatalf("round %d: reward/done (%v, %v) vs (%v, %v)", k, ar, ad, br, bd)
		}
		for i := range ao {
			if math.Float64bits(ao[i]) != math.Float64bits(bo[i]) {
				t.Fatalf("round %d obs element %d: %v vs %v", k, i, ao[i], bo[i])
			}
		}
	}
}

// TestVecEnvInstancesIndependentlySeeded checks that distinct instances
// start from distinct initial histories.
func TestVecEnvInstancesIndependentlySeeded(t *testing.T) {
	cfg := Config{
		Game:       stackelberg.DefaultGame(),
		HistoryLen: 4,
		Rounds:     10,
		Reward:     RewardBinary,
		Seed:       1,
	}
	vec, err := NewVecEnv(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := append([]float64(nil), vec.EnvAt(0).Reset()...)
	b := vec.EnvAt(1).Reset()
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("instances 0 and 1 produced identical initial observations")
	}
	if VecSeed(1, 0) != 1 {
		t.Fatalf("VecSeed(1, 0) = %d, want 1", VecSeed(1, 0))
	}
	if VecSeed(1, 1) == VecSeed(1, 0) {
		t.Fatal("VecSeed collision between instances")
	}
}

// TestNewVecEnvErrors propagates configuration errors.
func TestNewVecEnvErrors(t *testing.T) {
	if _, err := NewVecEnv(Config{}, 2); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := NewVecEnv(Config{Game: stackelberg.DefaultGame(), HistoryLen: 4, Rounds: 10, Reward: RewardBinary}, 0); err == nil {
		t.Fatal("zero instances accepted")
	}
}

// trainVec runs a short vectorized training on the real POMDP and returns
// the agent and per-episode returns.
func trainVec(t *testing.T, game *stackelberg.Game, seed int64, envs, workers int) (*rl.PPO, []float64) {
	t.Helper()
	vec, err := NewVecEnv(Config{
		Game:       game,
		HistoryLen: 3,
		Rounds:     30,
		Reward:     RewardBinary,
		Seed:       seed,
	}, envs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := rl.DefaultPPOConfig()
	cfg.Seed = seed
	cfg.MiniBatch = 10
	lo, hi := vec.ActionBounds()
	agent := rl.NewPPO(vec.ObsDim(), vec.ActDim(), lo, hi, cfg)
	trainer := rl.NewVecTrainer(vec, agent, rl.TrainerConfig{
		Episodes:         4,
		RoundsPerEpisode: 30,
		UpdateEvery:      10,
		CollectWorkers:   workers,
	})
	stats := trainer.Run()
	returns := make([]float64, len(stats))
	for i, s := range stats {
		returns[i] = s.Return
	}
	return agent, returns
}

// TestVecCollectTrainingBitIdenticalOnRandomGames extends the rule-4
// worker-invariance tests to the real POMDP: on randomized games, a
// vectorized training run must reproduce the serial-collection
// (workers=1) run's weights and episode returns bit for bit, for worker
// counts above the host core count included.
func TestVecCollectTrainingBitIdenticalOnRandomGames(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 4; trial++ {
		game := randomGame(t, rng)
		seed := int64(2000 + trial)
		workers := []int{2, 3, 7}[trial%3]

		serial, serialRet := trainVec(t, game, seed, 2, 1)
		parallel, parallelRet := trainVec(t, game, seed, 2, workers)

		for i := range serialRet {
			if math.Float64bits(serialRet[i]) != math.Float64bits(parallelRet[i]) {
				t.Fatalf("trial %d (N=%d, workers=%d): episode %d return %v vs %v",
					trial, game.N(), workers, i, serialRet[i], parallelRet[i])
			}
		}
		sp, pp := serial.Params(), parallel.Params()
		for i := range sp {
			for j := range sp[i].Value {
				if math.Float64bits(sp[i].Value[j]) != math.Float64bits(pp[i].Value[j]) {
					t.Fatalf("trial %d (N=%d, workers=%d): param %q element %d: %v vs %v",
						trial, game.N(), workers, sp[i].Name, j, sp[i].Value[j], pp[i].Value[j])
				}
			}
		}
	}
}
