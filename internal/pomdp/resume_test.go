package pomdp

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"vtmig/internal/nn"
	"vtmig/internal/rl"
	"vtmig/internal/stackelberg"
)

// resumeEnvCfg is the small fixed-seed environment the resume tests run.
func resumeEnvCfg(seed int64) Config {
	return Config{
		Game:       stackelberg.DefaultGame(),
		HistoryLen: 3,
		Rounds:     20,
		Reward:     RewardBinary,
		Seed:       seed,
	}
}

// TestGameEnvSnapshotResume pins the environment half of contract rule 6:
// a fresh GameEnv restored from an episode-boundary snapshot continues
// the original's observation/reward stream bit for bit — including the
// running-best reference of the binary reward, which persists across
// episodes.
func TestGameEnvSnapshotResume(t *testing.T) {
	orig, err := NewGameEnv(resumeEnvCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	// Drive two full episodes with a deterministic action sweep so the
	// best tracker accumulates real state.
	price := func(k int) []float64 { return []float64{5 + float64(k%40)} }
	for ep := 0; ep < 2; ep++ {
		orig.Reset()
		for k := 0; ; k++ {
			if _, _, done := orig.Step(price(k)); done {
				break
			}
		}
	}

	st := orig.EnvSnapshot()
	if !st.BestSet {
		t.Fatal("snapshot carries no best utility after two episodes")
	}
	if st.RNG.Seed != 7 || st.RNG.Calls == 0 {
		t.Fatalf("snapshot RNG %+v", st.RNG)
	}

	resumed, err := NewGameEnv(resumeEnvCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.EnvRestore(st); err != nil {
		t.Fatal(err)
	}
	if got, want := resumed.BestUtility(), orig.BestUtility(); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("restored best %v, want %v", got, want)
	}

	// Continue both streams in lockstep: identical observations, rewards,
	// and termination.
	for ep := 0; ep < 2; ep++ {
		a, b := orig.Reset(), resumed.Reset()
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("episode %d reset obs[%d]: %v vs %v", ep, i, a[i], b[i])
			}
		}
		for k := 0; ; k++ {
			ao, ar, ad := orig.Step(price(k + 3))
			bo, br, bd := resumed.Step(price(k + 3))
			if math.Float64bits(ar) != math.Float64bits(br) || ad != bd {
				t.Fatalf("episode %d round %d: reward/done (%v,%v) vs (%v,%v)", ep, k, ar, ad, br, bd)
			}
			for i := range ao {
				if math.Float64bits(ao[i]) != math.Float64bits(bo[i]) {
					t.Fatalf("episode %d round %d obs[%d] diverged", ep, k, i)
				}
			}
			if ad {
				break
			}
		}
	}
}

// TestGameEnvRestoreSeedMismatch pins the stream-identity check.
func TestGameEnvRestoreSeedMismatch(t *testing.T) {
	env, err := NewGameEnv(resumeEnvCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := env.EnvRestore(nn.EnvState{RNG: nn.RNGState{Seed: 4}}); err == nil {
		t.Fatal("restore with mismatched seed accepted")
	}
}

// TestGameEnvTrainerResumeBitIdentity is the end-to-end rule-6 pin on the
// REAL environment: training the paper's POMDP K episodes, snapshotting
// via the trainer, restoring into fresh envs, and training K more equals
// training 2K straight — under serial and vectorized collection.
func TestGameEnvTrainerResumeBitIdentity(t *testing.T) {
	for _, envs := range []int{1, 2} {
		t.Run(map[int]string{1: "serial", 2: "vec"}[envs], func(t *testing.T) {
			const seed = 11
			tcfg := rl.TrainerConfig{Episodes: 4, RoundsPerEpisode: 20, UpdateEvery: 10, CollectWorkers: 1}
			pcfg := rl.DefaultPPOConfig()
			pcfg.Seed = seed
			pcfg.MiniBatch = 10

			build := func() (rl.VecEnv, *rl.PPO) {
				vec, err := NewVecEnv(resumeEnvCfg(seed), envs)
				if err != nil {
					t.Fatal(err)
				}
				lo, hi := vec.ActionBounds()
				return vec, rl.NewPPO(vec.ObsDim(), vec.ActDim(), lo, hi, pcfg)
			}

			refVec, refAgent := build()
			rl.NewVecTrainer(refVec, refAgent, tcfg).Run()

			// Split run: 2 episodes, snapshot (JSON round trip), resume.
			firstVec, firstAgent := build()
			firstCfg := tcfg
			firstCfg.Episodes = 2
			tr1 := rl.NewVecTrainer(firstVec, firstAgent, firstCfg)
			tr1.Run()
			ck, err := tr1.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := ck.Save(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := nn.LoadCheckpoint(&buf)
			if err != nil {
				t.Fatal(err)
			}

			resVec, resAgent := build()
			tr2, err := rl.ResumeTrainer(resVec, resAgent, tcfg, loaded)
			if err != nil {
				t.Fatal(err)
			}
			tr2.Run()

			refP, resP := refAgent.Params(), resAgent.Params()
			for i := range refP {
				for j := range refP[i].Value {
					if math.Float64bits(refP[i].Value[j]) != math.Float64bits(resP[i].Value[j]) {
						t.Fatalf("param %q[%d]: %v vs %v", refP[i].Name, j, resP[i].Value[j], refP[i].Value[j])
					}
				}
			}
			// Environment streams must have landed in the same place.
			for e := 0; e < envs; e++ {
				a := refVec.EnvAt(e).(*GameEnv).EnvSnapshot()
				b := resVec.EnvAt(e).(*GameEnv).EnvSnapshot()
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("env %d stream state %+v, want %+v", e, b, a)
				}
			}
		})
	}
}
