package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead ensures the trace reader never panics on arbitrary input and
// that everything it accepts round-trips through the tracer.
func FuzzRead(f *testing.F) {
	f.Add(`{"t":1,"kind":"handover","vehicle":3}`)
	f.Add("")
	f.Add("\n\n")
	f.Add(`{"t":-5,"kind":"pricing_round","price":1e308}`)
	f.Add(`{"t":1,"kind":"x"}{"t":2}`)
	f.Fuzz(func(t *testing.T, input string) {
		events, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		tr := NewTracer(&buf)
		for _, e := range events {
			if err := tr.Emit(e); err != nil {
				t.Fatalf("re-emitting accepted event: %v", err)
			}
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-reading emitted trace: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip lost events: %d -> %d", len(events), len(again))
		}
	})
}
