// Package trace provides structured event tracing for the vehicular
// simulator: events are emitted as JSON Lines so a run can be inspected
// with standard tooling, replayed, or summarized programmatically.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Kind enumerates the event types the simulator emits.
type Kind string

// Event kinds.
const (
	KindHandover          Kind = "handover"
	KindPricingRound      Kind = "pricing_round"
	KindPricingFailure    Kind = "pricing_failure"
	KindMigrationStart    Kind = "migration_start"
	KindMigrationComplete Kind = "migration_complete"
	KindDeferred          Kind = "deferred"
	KindArrival           Kind = "arrival"
	KindDeparture         Kind = "departure"
	KindOutageStart       Kind = "outage_start"
	KindOutageEnd         Kind = "outage_end"
)

// Event is one trace record. Unused numeric fields stay at their zero
// values and are omitted from the JSON; the ID fields are always emitted,
// because 0 is a real vehicle/RSU id — "not applicable" is the -1
// sentinel, never omission.
type Event struct {
	// TimeS is the simulation time in seconds.
	TimeS float64 `json:"t"`
	// Kind tags the record.
	Kind Kind `json:"kind"`
	// Vehicle is the vehicle/VMU id (-1 when not applicable).
	Vehicle int `json:"vehicle"`
	// FromRSU and ToRSU describe a handover or migration route.
	FromRSU int `json:"from_rsu"`
	ToRSU   int `json:"to_rsu"`
	// Price is the posted unit bandwidth price of a pricing round.
	Price float64 `json:"price,omitempty"`
	// Bandwidth is a grant in MHz.
	Bandwidth float64 `json:"bandwidth,omitempty"`
	// AoTM is the migration's age in seconds.
	AoTM float64 `json:"aotm,omitempty"`
	// Participants counts the VMUs in a pricing round.
	Participants int `json:"participants,omitempty"`
}

// Tracer serializes events to a writer as JSON Lines. A nil *Tracer is
// valid and discards everything, so call sites need no nil checks.
type Tracer struct {
	enc *json.Encoder
}

// NewTracer wraps a writer. Passing nil returns a discarding tracer.
func NewTracer(w io.Writer) *Tracer {
	if w == nil {
		return nil
	}
	return &Tracer{enc: json.NewEncoder(w)}
}

// Emit writes one event. Emit on a nil tracer is a no-op. Encoding errors
// are reported so callers can stop tracing a broken sink.
func (t *Tracer) Emit(e Event) error {
	if t == nil {
		return nil
	}
	if err := t.enc.Encode(e); err != nil {
		return fmt.Errorf("trace: encoding event: %w", err)
	}
	return nil
}

// Read decodes all events from a JSONL stream.
func Read(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading stream: %w", err)
	}
	return out, nil
}

// Summary aggregates a trace.
type Summary struct {
	// Counts maps event kind to occurrences.
	Counts map[Kind]int
	// FirstS and LastS bound the traced time range.
	FirstS, LastS float64
	// MeanRoundPrice averages the posted prices over pricing rounds.
	MeanRoundPrice float64
}

// Summarize computes aggregate statistics over events.
func Summarize(events []Event) Summary {
	s := Summary{Counts: make(map[Kind]int)}
	var priceSum float64
	var rounds int
	for i, e := range events {
		s.Counts[e.Kind]++
		if i == 0 || e.TimeS < s.FirstS {
			s.FirstS = e.TimeS
		}
		if e.TimeS > s.LastS {
			s.LastS = e.TimeS
		}
		if e.Kind == KindPricingRound {
			priceSum += e.Price
			rounds++
		}
	}
	if rounds > 0 {
		s.MeanRoundPrice = priceSum / float64(rounds)
	}
	return s
}
