package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestEmitReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	events := []Event{
		{TimeS: 1, Kind: KindHandover, Vehicle: 3, FromRSU: 0, ToRSU: 1},
		{TimeS: 2, Kind: KindPricingRound, Vehicle: -1, Price: 25.3, Participants: 2},
		{TimeS: 3, Kind: KindMigrationComplete, Vehicle: 3, AoTM: 0.21, Bandwidth: 0.3},
	}
	for _, e := range events {
		if err := tr.Emit(e); err != nil {
			t.Fatalf("Emit: %v", err)
		}
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestNilTracerDiscards(t *testing.T) {
	tr := NewTracer(nil)
	if tr != nil {
		t.Fatal("NewTracer(nil) must return nil")
	}
	if err := tr.Emit(Event{Kind: KindHandover}); err != nil {
		t.Errorf("nil tracer Emit = %v, want nil", err)
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("sink broken") }

func TestEmitReportsSinkErrors(t *testing.T) {
	tr := NewTracer(failingWriter{})
	if err := tr.Emit(Event{Kind: KindHandover}); err == nil {
		t.Fatal("broken sink did not error")
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	in := "{\"t\":1,\"kind\":\"handover\"}\n\n{\"t\":2,\"kind\":\"deferred\"}\n"
	got, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d events, want 2", len(got))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{
		{TimeS: 5, Kind: KindHandover},
		{TimeS: 6, Kind: KindPricingRound, Price: 20},
		{TimeS: 8, Kind: KindPricingRound, Price: 30},
		{TimeS: 9, Kind: KindMigrationComplete},
	}
	s := Summarize(events)
	if s.Counts[KindPricingRound] != 2 || s.Counts[KindHandover] != 1 {
		t.Errorf("counts = %v", s.Counts)
	}
	if s.FirstS != 5 || s.LastS != 9 {
		t.Errorf("range = [%v, %v], want [5, 9]", s.FirstS, s.LastS)
	}
	if s.MeanRoundPrice != 25 {
		t.Errorf("mean price = %v, want 25", s.MeanRoundPrice)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if len(s.Counts) != 0 || s.MeanRoundPrice != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

// TestZeroIDRoundTrip pins the fix for the omitempty ID tags: vehicle 0
// and RSU 0 are real entities, and an emitted route touching them must
// survive encode → Read → Summarize intact instead of decaying to
// "field absent".
func TestZeroIDRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	events := []Event{
		{TimeS: 0.5, Kind: KindHandover, Vehicle: 0, FromRSU: 0, ToRSU: 1},
		{TimeS: 1.0, Kind: KindMigrationStart, Vehicle: 0, FromRSU: 7, ToRSU: 0, Price: 25, Bandwidth: 0.2},
		{TimeS: 1.5, Kind: KindMigrationComplete, Vehicle: 0, FromRSU: 7, ToRSU: 0, AoTM: 0.4},
	}
	for _, e := range events {
		if err := tr.Emit(e); err != nil {
			t.Fatalf("Emit: %v", err)
		}
	}
	// The IDs must be present on the wire, not defaulted at decode time.
	for _, key := range []string{`"vehicle":0`, `"from_rsu":0`, `"to_rsu":0`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("encoded trace lacks %s:\n%s", key, buf.String())
		}
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
	sum := Summarize(got)
	if sum.Counts[KindHandover] != 1 || sum.Counts[KindMigrationStart] != 1 || sum.Counts[KindMigrationComplete] != 1 {
		t.Fatalf("summary counts %+v", sum.Counts)
	}
	if sum.FirstS != 0.5 || sum.LastS != 1.5 {
		t.Fatalf("summary range [%g, %g], want [0.5, 1.5]", sum.FirstS, sum.LastS)
	}
}
