package vtmig_test

import (
	"errors"
	"math"
	"testing"

	"vtmig"
)

func TestFacadeDefaultGame(t *testing.T) {
	g := vtmig.DefaultGame()
	if g.N() != 2 {
		t.Fatalf("N = %d, want 2", g.N())
	}
	eq := g.Solve()
	if math.Abs(eq.Price-25.34) > 0.05 {
		t.Errorf("equilibrium price = %v, want ≈25.34 (paper: 25)", eq.Price)
	}
}

func TestFacadeNewGame(t *testing.T) {
	g, err := vtmig.NewGame(
		[]vtmig.VMU{{ID: 0, Alpha: 8, DataSize: vtmig.FromMB(150)}},
		vtmig.DefaultChannel(), 5, 50, 0.5,
	)
	if err != nil {
		t.Fatalf("NewGame: %v", err)
	}
	if got := g.VMUs[0].DataSize; got != 1.5 {
		t.Errorf("DataSize = %v, want 1.5 (150 MB)", got)
	}
}

func TestFacadeAoTMAndImmersion(t *testing.T) {
	a := vtmig.AoTM(2, 4)
	if a != 0.5 {
		t.Errorf("AoTM = %v, want 0.5", a)
	}
	g := vtmig.Immersion(5, a)
	if want := 5 * math.Log(3); math.Abs(g-want) > 1e-12 {
		t.Errorf("Immersion = %v, want %v", g, want)
	}
}

func TestFacadeBaselines(t *testing.T) {
	g := vtmig.DefaultGame()
	oracle, err := vtmig.RunBaseline(g, "oracle", 10, 1)
	if err != nil {
		t.Fatalf("RunBaseline(oracle): %v", err)
	}
	random, err := vtmig.RunBaseline(g, "random", 100, 1)
	if err != nil {
		t.Fatalf("RunBaseline(random): %v", err)
	}
	if oracle <= random {
		t.Errorf("oracle %v must beat random %v", oracle, random)
	}
	if _, err := vtmig.RunBaseline(g, "nonsense", 10, 1); err == nil {
		t.Error("unknown baseline must error")
	} else {
		var ub *vtmig.UnknownBaselineError
		if !errors.As(err, &ub) || ub.Name != "nonsense" {
			t.Errorf("error = %v, want UnknownBaselineError{nonsense}", err)
		}
	}
}

func TestFacadeTrainAgentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	cfg := vtmig.DefaultDRLConfig()
	cfg.Episodes = 20
	cfg.Rounds = 50
	res, err := vtmig.TrainAgent(vtmig.DefaultGame(), cfg)
	if err != nil {
		t.Fatalf("TrainAgent: %v", err)
	}
	if res.EvalOutcome.MSPUtility <= 0 {
		t.Errorf("trained utility = %v, want > 0", res.EvalOutcome.MSPUtility)
	}
}

func TestFacadeSimulation(t *testing.T) {
	cfg := vtmig.DefaultSimConfig()
	cfg.DurationS = 300
	rep, err := vtmig.RunSimulation(cfg)
	if err != nil {
		t.Fatalf("RunSimulation: %v", err)
	}
	if len(rep.Migrations) == 0 {
		t.Error("no migrations completed")
	}
	bad := vtmig.DefaultSimConfig()
	bad.Vehicles = 0
	if _, err := vtmig.RunSimulation(bad); err == nil {
		t.Error("invalid config must error")
	}
}

func TestFacadeExtraBaselines(t *testing.T) {
	g := vtmig.DefaultGame()
	ident, err := vtmig.RunBaseline(g, "identification", 50, 1)
	if err != nil {
		t.Fatalf("RunBaseline(identification): %v", err)
	}
	ql, err := vtmig.RunBaseline(g, "qlearning", 500, 1)
	if err != nil {
		t.Fatalf("RunBaseline(qlearning): %v", err)
	}
	random, err := vtmig.RunBaseline(g, "random", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Identification converges after two probes, so its mean over 50
	// rounds must beat random pricing.
	if ident <= random {
		t.Errorf("identification mean %v must beat random %v", ident, random)
	}
	if ql <= 0 {
		t.Errorf("qlearning mean %v must be positive", ql)
	}
}
