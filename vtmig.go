package vtmig

import (
	"io"

	"vtmig/internal/aotm"
	"vtmig/internal/baselines"
	"vtmig/internal/channel"
	"vtmig/internal/experiments"
	"vtmig/internal/nn"
	"vtmig/internal/pomdp"
	"vtmig/internal/rl"
	"vtmig/internal/scenario"
	"vtmig/internal/serve"
	"vtmig/internal/sim"
	"vtmig/internal/stackelberg"
)

// Core game types.
type (
	// VMU is one follower of the Stackelberg game (a vehicular metaverse
	// user whose twin must migrate).
	VMU = stackelberg.VMU
	// Game is the AoTM-based Stackelberg pricing game.
	Game = stackelberg.Game
	// Equilibrium is a solved game outcome.
	Equilibrium = stackelberg.Equilibrium
	// EvalScratch backs the allocation-free equilibrium evaluation path:
	// pass one to Game.EvaluateInto / Game.SolveInto in loops that solve
	// or score many prices (sweeps, per-round scoring) to avoid
	// per-report slice allocations. Reports returned through a scratch
	// alias it and are overwritten by the next call; Clone them to
	// retain.
	EvalScratch = stackelberg.EvalScratch
	// ChannelParams is the RSU-to-RSU wireless link model.
	ChannelParams = channel.Params
)

// Learning types.
type (
	// DRLConfig bundles the training hyper-parameters of Algorithm 1.
	DRLConfig = experiments.DRLConfig
	// TrainResult is a trained MSP agent with its learning history.
	TrainResult = experiments.TrainResult
	// PPO is the proximal-policy-optimization learner.
	PPO = rl.PPO
	// GameEnv is the pricing game as a POMDP.
	GameEnv = pomdp.GameEnv
	// Checkpoint is a versioned training checkpoint. A full one —
	// TrainResult.Checkpoint, or a file written by vtmig-train
	// -checkpoint — carries weights, per-parameter Adam moments and step
	// count, the policy RNG stream (version 2 captures the generator
	// state itself, so restore is exact and O(1) regardless of stream
	// length), every training-environment stream's state, and the episode
	// count, so ResumeTraining continues the run bit-identically
	// (determinism contract rule 6). A checkpoint written by
	// OnlinePricer.Snapshot additionally carries the pricer section —
	// belief window, current observation, best tracker, stream counters —
	// for NewOnlinePricerFromCheckpoint. Checkpoints serialize as JSON
	// (Save) or as the compact CRC-checked binary format (SaveBinary);
	// LoadCheckpoint auto-detects either.
	Checkpoint = nn.Checkpoint
)

// Simulation types.
type (
	// SimConfig parameterizes the end-to-end vehicular simulator.
	SimConfig = sim.Config
	// SimReport aggregates one simulation run.
	SimReport = sim.Report
	// SimPricer is the simulator's MSP pricing-strategy interface.
	SimPricer = sim.Pricer
	// OnlinePricer is the online continual-learning DRL pricing strategy:
	// a PPO agent that keeps training from live simulator rounds.
	OnlinePricer = sim.OnlinePricer
	// OnlinePricerConfig configures NewOnlinePricer.
	OnlinePricerConfig = sim.OnlinePricerConfig
	// OnlineStudyConfig parameterizes RunOnlineStudy.
	OnlineStudyConfig = experiments.OnlineStudyConfig
	// OnlineStudy compares the oracle, frozen-DRL, and online-DRL pricers
	// on one fixed simulation scenario.
	OnlineStudy = experiments.OnlineStudy
	// PricerSpec is the declarative form of an MSP pricing strategy — a
	// registered name plus parameters, with zero-valued fields adopting
	// defaults or checkpoint metadata. Build one with NewPricerFromSpec.
	PricerSpec = sim.PricerSpec
	// PricerBuildOptions carries host hooks for NewPricerFromSpec: the
	// fallback seed, snapshot plumbing, and logging.
	PricerBuildOptions = sim.PricerBuildOptions
)

// Scenario types (the declarative workload layer behind vtmig-sim
// -scenario).
type (
	// Scenario is a named, self-contained description of one simulation —
	// road world, fleet, churn, outages, demand cycle, and pricer —
	// loadable from strict JSON or TOML files (LoadScenario) and compiled
	// deterministically into a SimConfig. Zero-valued fields adopt the
	// DefaultSimConfig values, so a scenario states only what it changes
	// about the default highway world.
	Scenario = scenario.Scenario
	// ScenarioMobility selects and parameterizes the scenario's road
	// world: "highway" (circular road) or "grid" (Manhattan street grid).
	ScenarioMobility = scenario.Mobility
)

// LoadScenario reads, parses, and fully validates a scenario file; the
// format follows the extension (.json or .toml). Loading is strict —
// unknown fields, malformed syntax, and invalid values all error — so a
// loaded scenario always compiles.
func LoadScenario(path string) (*Scenario, error) { return scenario.Load(path) }

// RunScenario compiles a scenario (expanding generator blocks, building
// its pricer through the registry — learning pricers may train here) and
// runs the simulation it describes.
func RunScenario(s *Scenario, opts PricerBuildOptions) (SimReport, error) {
	cfg, err := s.Compile(opts)
	if err != nil {
		return SimReport{}, err
	}
	return RunSimulation(cfg)
}

// Serving types (the journaled online-pricing daemon behind vtmig-serve).
type (
	// ServeConfig parameterizes OpenServer: the durable state directory,
	// the reference game, and the learner/rotation knobs.
	ServeConfig = serve.Config
	// ServeServer is the daemon core — one online pricer, one intake
	// journal, one serializing intake goroutine. Quotes flow through
	// Quote (or the HTTP handler from Handler); every accepted round is
	// journaled before it is applied and full checkpoints rotate at
	// optimization-phase boundaries, so reopening the state directory
	// after a crash or clean stop rebuilds the exact serving state by
	// checkpoint restore + journal replay (determinism contract rule 5 at
	// a process boundary, restored under rule 6's strictly-or-not-at-all).
	ServeServer = serve.Server
	// QuoteRequest is one pricing round to quote: the migrating VMUs and
	// optionally the round's channel distance and bandwidth pool.
	QuoteRequest = serve.QuoteRequest
	// QuoteVMU is one follower of a quoted round.
	QuoteVMU = serve.QuoteVMU
	// QuoteResponse is the posted price plus the learner's position.
	QuoteResponse = serve.QuoteResponse
	// ServeStats is a point-in-time view of the serving state.
	ServeStats = serve.Stats
	// ServeReplicaConfig parameterizes OpenReplica: the primary's state
	// directory plus the reference game, learner architecture, and
	// refresh cadence.
	ServeReplicaConfig = serve.ReplicaConfig
	// ServeReplica is a quote-only read replica fed by the primary's
	// rotated checkpoints: it freezes the latest one into a FrozenPricer
	// and answers every quote with exactly the price the primary posts
	// for its first round after that snapshot (determinism contract
	// rule 8 across processes). Replicas never write to the state
	// directory; their staleness is visible in Stats.
	ServeReplica = serve.Replica
	// ServeReplicaStats is a point-in-time view of a replica: the frozen
	// snapshot's ordinals plus checkpoint age and refresh counters.
	ServeReplicaStats = serve.ReplicaStats
	// FrozenPricer is the read-only pricing strategy a replica serves: a
	// checkpointed belief state's deterministic mean-price readout — no
	// RNG, no learning, O(1) per quote and safe for concurrent use.
	FrozenPricer = sim.FrozenPricer
)

// OpenServer builds (or recovers) the journaled serving state in
// cfg.Dir and starts the intake goroutine. See ServeServer.
func OpenServer(cfg ServeConfig) (*ServeServer, error) { return serve.Open(cfg) }

// OpenReplica opens a read-only serving replica over a primary's state
// directory. See ServeReplica.
func OpenReplica(cfg ServeReplicaConfig) (*ServeReplica, error) { return serve.OpenReplica(cfg) }

// NewFrozenPricerFromCheckpoint freezes a pricer checkpoint (one written
// by OnlinePricer.Snapshot or rotated by the serving layer) into the
// read-only FrozenPricer a replica serves. Zero-valued config fields
// adopt the checkpointed hyper-parameters; explicitly set ones must
// match them, and cfg.Agent must be nil.
func NewFrozenPricerFromCheckpoint(cfg OnlinePricerConfig, ck *Checkpoint) (*FrozenPricer, error) {
	return sim.NewFrozenPricerFromCheckpoint(cfg, ck)
}

// NewGame constructs a validated Stackelberg game. Data sizes are in
// units of 100 MB (use FromMB), bandwidth in MHz.
func NewGame(vmus []VMU, ch ChannelParams, cost, pmax, bmax float64) (*Game, error) {
	return stackelberg.NewGame(vmus, ch, cost, pmax, bmax)
}

// DefaultGame returns the paper's two-VMU benchmark (α=5, D={200,100} MB,
// C=5, pmax=50, Bmax=0.5 MHz).
func DefaultGame() *Game { return stackelberg.DefaultGame() }

// DefaultChannel returns the paper's RSU channel parameters (40 dBm,
// −20 dB unit gain, 500 m, ε=2, −150 dBm noise).
func DefaultChannel() ChannelParams { return channel.DefaultParams() }

// FromMB converts megabytes into the model's 100 MB data unit.
func FromMB(mb float64) float64 { return aotm.FromMB(mb) }

// AoTM computes the Age of Twin Migration A = D/γ (Eq. 1).
func AoTM(dataSize, rate float64) float64 { return aotm.AoTM(dataSize, rate) }

// Immersion computes the VMU immersion G = α·ln(1 + 1/A).
func Immersion(alpha, age float64) float64 { return aotm.Immersion(alpha, age) }

// DefaultDRLConfig returns the training configuration aligned with the
// paper's Section V (L=4, K=100, |I|=20, M=10, two 64-unit hidden layers).
func DefaultDRLConfig() DRLConfig { return experiments.DefaultDRLConfig() }

// TrainAgent trains the MSP's PPO pricing agent on a game under
// incomplete information (Algorithm 1) and evaluates the learned policy.
// The result carries a full training checkpoint (TrainResult.Checkpoint)
// for persistence and resume.
func TrainAgent(game *Game, cfg DRLConfig) (*TrainResult, error) {
	return experiments.TrainAgent(game, cfg)
}

// ResumeTraining continues a checkpointed training run to cfg.Episodes
// total episodes. The configuration must match the checkpointed training
// (checked via its fingerprint; cfg.Seed is taken from the checkpoint),
// and the result is bit-identical to a run that never stopped — same
// final weights and evaluation — regardless of CollectWorkers, shard
// count, and GOMAXPROCS (determinism contract rule 6).
func ResumeTraining(game *Game, cfg DRLConfig, ck *Checkpoint) (*TrainResult, error) {
	return experiments.ResumeAgent(game, cfg, ck)
}

// LoadCheckpoint reads and strictly validates a checkpoint in either
// encoding — JSON (Checkpoint.Save) or the compact binary format
// (Checkpoint.SaveBinary), auto-detected by the leading magic. Unknown
// fields, mis-sized or empty parameter vectors, non-finite values,
// truncation, and bit corruption (binary: CRC-checked) are rejected with
// a descriptive error.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	return nn.LoadCheckpoint(r)
}

// RunBaseline plays one K-round pricing episode with the named baseline
// ("random", "greedy", "oracle", "qlearning", or "identification") and
// returns its mean MSP utility.
func RunBaseline(game *Game, name string, rounds int, seed int64) (float64, error) {
	var p baselines.Policy
	switch name {
	case "random":
		p = baselines.NewRandom(game.Cost, game.PMax, seed)
	case "greedy":
		p = baselines.NewGreedy(game.Cost, game.PMax, 0.1, seed)
	case "oracle":
		p = baselines.NewOracle(game)
	case "qlearning":
		p = baselines.NewQLearning(game.Cost, game.PMax, 46, 1.0, 1.0, 0.99, seed)
	case "identification":
		p = baselines.NewIdentification(game.Cost, game.PMax, game.Cost)
	default:
		return 0, errUnknownBaseline(name)
	}
	return baselines.RunEpisode(game, p, rounds).MeanUtility, nil
}

// DefaultSimConfig returns a 6-vehicle highway scenario aligned with the
// paper's parameter ranges.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// RunSimulation executes the end-to-end vehicular-metaverse simulation.
func RunSimulation(cfg SimConfig) (SimReport, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return SimReport{}, err
	}
	return s.Run(), nil
}

// NewPricerFromSpec builds the pricer a declarative spec describes, via
// the registry: "oracle", "fixed", "random", "drl", and "online" (the
// learning pricers are registered by the experiments layer, which this
// package links in). Scenario files and the CLIs describe pricers the
// same way, so they all share one name→pricer wiring.
func NewPricerFromSpec(spec PricerSpec, opts PricerBuildOptions) (SimPricer, error) {
	return sim.NewPricerFromSpec(spec, opts)
}

// RegisteredPricers lists the pricer names NewPricerFromSpec accepts.
func RegisteredPricers() []string { return sim.RegisteredPricers() }

// NewOnlinePricer builds the simulator's online continual-learning DRL
// pricer: warm-started from an offline TrainResult agent, or learning
// from scratch when cfg.Agent is nil.
func NewOnlinePricer(cfg OnlinePricerConfig) (*OnlinePricer, error) {
	return sim.NewOnlinePricer(cfg)
}

// NewOnlinePricerFromCheckpoint resumes an online pricer from a
// checkpoint written by OnlinePricer.Snapshot (or its SnapshotEvery
// hook): the learner's full training state plus the belief window,
// current observation, best tracker, and stream counters are restored,
// so continuing the same simulation stream is bit-identical to never
// having stopped (determinism contract rule 6). Zero-valued config
// fields adopt the checkpointed hyper-parameters; explicitly set ones
// must match them.
func NewOnlinePricerFromCheckpoint(cfg OnlinePricerConfig, ck *Checkpoint) (*OnlinePricer, error) {
	return sim.NewOnlinePricerFromCheckpoint(cfg, ck)
}

// DefaultOnlineStudyConfig returns the frozen-vs-online comparison over
// the default simulation scenario with a small offline budget.
func DefaultOnlineStudyConfig() OnlineStudyConfig {
	return experiments.DefaultOnlineStudyConfig()
}

// RunOnlineStudy runs the identical fixed-seed simulation scenario under
// the oracle, frozen-DRL, warm-started online, and cold-started online
// pricers and compares their leader economics.
func RunOnlineStudy(cfg OnlineStudyConfig) (*OnlineStudy, error) {
	return experiments.RunOnlineStudy(cfg)
}
