# Development targets for the vtmig reproduction. `make ci` is the gate
# run before merging: vet, build, race-enabled tests (which exercise the
# experiment worker pool under the race detector), and a short benchmark
# smoke pass over the PPO hot path.

GO ?= go

.PHONY: all vet build test race race-sharded bench-smoke bench golden ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector; the worker-pool and
# parallel-sweep tests make data races in the experiment fan-out fail
# loudly here.
race:
	$(GO) test -race ./...

# race-sharded re-runs the sharded-update determinism and allocation
# tests under the race detector with a high iteration count. The tests
# themselves pin shard-count × GOMAXPROCS combinations (including values
# above the host's core count), so a race or a reduction-order bug in the
# sharded gradient path fails here even on a single-core CI box.
race-sharded:
	$(GO) test -race -count=2 -run 'Sharded|AutoShards|ShardDeferred|ShardClone' ./internal/rl ./internal/pomdp ./internal/nn

# bench-smoke exercises the PPO hot-path benchmarks just enough to catch
# gross regressions and allocation reintroductions.
bench-smoke:
	$(GO) test -run '^$$' -bench 'PPOUpdate$$|PPOSelectAction|MLPForward|MatMul' -benchmem -benchtime 100x .

# bench is the full benchmark suite used to fill BENCH_pr*.json.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 2s .

# golden regenerates the fixed-seed golden files after an intentional
# numeric change.
golden:
	$(GO) test ./internal/experiments -run Golden -update

ci: vet build race race-sharded bench-smoke
