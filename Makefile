# Development targets for the vtmig reproduction. `make ci` is the gate
# run before merging — GitHub Actions runs it on every push and pull
# request (.github/workflows/ci.yml, with Go build/module caching): vet,
# gofmt cleanliness, build, race-enabled tests (which exercise the
# experiment worker pool under the race detector), the sharded-update,
# vectorized-collection, online-learning, and region-sharded-simulator
# (rule 7) determinism suites under -race, the serving crash-recovery
# smoke (serve-smoke), and a short benchmark smoke pass over the PPO hot
# path.
#
# Benchmark regressions are gated by tools/benchdiff, which diffs two
# recordings — BENCH_*.json snapshots or raw `go test -bench -benchmem`
# output — and exits non-zero on >15 % ns/op growth or any allocs/op
# increase. `make bench-compare` measures a fresh short pass of the hot
# paths and diffs it against the latest snapshot (override BASE to pin an
# older snapshot); to diff two arbitrary recordings run the tool
# directly:
#
#	make bench-compare
#	make bench-compare BASE=BENCH_pr2.json
#	go run ./tools/benchdiff BENCH_pr2.json BENCH_pr3.json
#
# CI runs bench-compare as an advisory job; shared-runner timing noise
# makes the ns/op gate informative rather than blocking there, while the
# allocs/op gate is exact everywhere.

GO ?= go

# BASE is the snapshot bench-compare measures against.
BASE ?= BENCH_pr9.json
# BENCH_HOT selects the hot-path benchmarks bench-compare re-measures.
BENCH_HOT = PPOUpdate$$|PPOUpdateSharded|PPOSelectAction|MLPForward$$|Evaluate|SolveScratch|Collect|TrainerEpisode|StreamCollect|SimRoundOnline|Snapshot|Resume|CheckpointJSON|CheckpointBinary|ServeQuote|SimFleetSharded

.PHONY: all vet fmt-check build test race race-sharded race-collect race-online race-resume race-shardsim serve-smoke bench-smoke bench bench-compare bench-multicore golden golden-drift ci

all: ci

vet:
	$(GO) vet ./...

# fmt-check fails when any file needs gofmt (CI cleanliness gate).
fmt-check:
	@files="$$(gofmt -l .)"; if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector; the worker-pool and
# parallel-sweep tests make data races in the experiment fan-out fail
# loudly here.
race:
	$(GO) test -race ./...

# race-sharded re-runs the sharded-update determinism and allocation
# tests under the race detector with a high iteration count. The tests
# themselves pin shard-count × GOMAXPROCS combinations (including values
# above the host's core count), so a race or a reduction-order bug in the
# sharded gradient path fails here even on a single-core CI box.
race-sharded:
	$(GO) test -race -count=2 -run 'Sharded|AutoShards|ShardDeferred|ShardClone' ./internal/rl ./internal/pomdp ./internal/nn

# race-collect re-runs the vectorized-collection determinism and
# allocation tests under the race detector. The worker×GOMAXPROCS tables
# pin worker counts above the host's core count, so a race or a
# merge-order bug in the parallel collection path fails here even on a
# single-core CI box.
race-collect:
	$(GO) test -race -count=2 -run 'VecCollect|VecAuto|VecMerge|VecGAE|VecTrainer|VecEnv|SingleEnvTrainer|SelectActionBatch' ./internal/rl ./internal/pomdp

# race-online re-runs the online continual-learning determinism and
# stream-collector tests under the race detector. The rule-5 tables pin
# CollectWorkers x shard x GOMAXPROCS combinations above the host's core
# count, so a race or an ordering bug anywhere in the online training
# path fails here even on a single-core CI box.
race-online:
	$(GO) test -race -count=2 -run 'Online|Stream' ./internal/rl ./internal/sim

# race-resume re-runs the checkpoint/resume determinism tests under the
# race detector. The rule-6 resume-equality tables pin snapshot-at-K-
# then-train-K against train-2K across CollectWorkers x shards x
# GOMAXPROCS (with knobs that differ between the legs), so a race or a
# missing piece of checkpointed state anywhere in the snapshot/restore
# path fails here even on a single-core CI box.
race-resume:
	$(GO) test -race -count=2 -run 'Resume|Snapshot|Checkpoint|Clone|CountingSource' ./internal/rl ./internal/nn ./internal/pomdp ./internal/mathx ./internal/sim

# race-shardsim re-runs the region-sharded simulator determinism layer
# under the race detector: the rule-7 shard-count × GOMAXPROCS
# bit-identity tables (sim- and scenario-level, online pricer included),
# the per-step shard invariants under churn and outages, and the
# FuzzShardPartition seed corpus. The tables pin region counts above the
# RSU count and GOMAXPROCS above the host's core count, so a race or a
# merge-order bug in the sharded vehicle phase fails here even on a
# single-core CI box.
race-shardsim:
	$(GO) test -race -count=1 -run 'Shard|RegionOf|Rule7|DiscardMigration' ./internal/sim ./internal/scenario

# serve-smoke pins the serving layer's crash-recovery story under the
# race detector: quote against a live daemon, kill it mid-run, reopen the
# state directory (checkpoint restore + journal replay), and assert the
# recovered quotes and learner weights are bit-identical to an
# uninterrupted run — plus the journal edge cases (torn trailing line,
# rotated-away checkpoint, mid-file corruption, the FuzzJournalRecover
# seed corpus) and the daemon-level restart-resume flow. The Batch,
# Replica, and Shutdown arms pin contract rule 8 (batch size × prework
# workers bit-identical to serial intake; replica byte-identical to the
# primary at the same snapshot; batched crash recovery) and the graceful
# shutdown-under-load accounting, with the prework fan-out goroutines
# exercised under -race.
serve-smoke:
	$(GO) test -race -count=1 -run 'Serve|Journal|Quote|Loadgen|HTTP|Batch|Replica|Shutdown' ./internal/serve ./cmd/vtmig-serve ./cmd/vtmig-loadgen
	$(GO) test -race -count=1 -run 'QuoteBatch|Frozen' ./internal/sim

# bench-smoke exercises the PPO hot-path benchmarks just enough to catch
# gross regressions and allocation reintroductions. The checkpoint
# encode/decode pair keeps the binary format's size and speed advantage
# over JSON visible in every smoke pass.
bench-smoke:
	$(GO) test -run '^$$' -bench 'PPOUpdate$$|PPOSelectAction|MLPForward|MatMul|Collect|StreamCollect|SimRoundOnline|Snapshot|Resume|CheckpointJSON|CheckpointBinary|ServeQuote' -benchmem -benchtime 100x .

# bench is the full benchmark suite used to fill BENCH_pr*.json.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 2s .

# bench-compare measures a fresh short pass of the hot paths and diffs
# it against the latest snapshot (see header).
bench-compare:
	$(GO) test -run '^$$' -bench '$(BENCH_HOT)' -benchmem -benchtime 1s . > bench-current.txt
	$(GO) run ./tools/benchdiff -threshold 0.15 $(BASE) bench-current.txt

# bench-multicore records the hot-path benchmarks with parallelism
# enabled (-cpu 2,4, i.e. GOMAXPROCS > 1) — an advisory recording for the
# sharded/vectorized paths whose single-core numbers hide contention and
# scheduling effects. CI runs it continue-on-error; benchdiff strips the
# -N GOMAXPROCS suffix, so the recording diffs against any snapshot.
bench-multicore:
	$(GO) test -run '^$$' -bench '$(BENCH_HOT)' -benchmem -benchtime 100x -cpu 2,4 . > bench-multicore.txt
	@cat bench-multicore.txt

# golden regenerates the fixed-seed golden files after an intentional
# numeric change: the experiment figure pipelines, the per-pricer
# simulator reports, and the scenario-matrix reports.
golden:
	$(GO) test ./internal/experiments -run Golden -update
	$(GO) test ./internal/sim -run Golden -update
	$(GO) test ./internal/scenario -run Golden -update

# golden-drift regenerates every golden suite and fails when the result
# differs from the committed files — i.e. when a numeric change landed
# without its goldens. CI runs it continue-on-error: bitwise drift is a
# signal to investigate, not automatically a bug (the golden tests
# themselves compare under tolerance).
golden-drift: golden
	git diff --exit-code -- '*_golden.txt' 'internal/experiments/testdata' 'internal/sim/testdata' 'internal/scenario/testdata'

ci: vet fmt-check build race race-sharded race-collect race-online race-resume race-shardsim serve-smoke bench-smoke
