package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const oldJSON = `{
  "description": "old snapshot",
  "benchmarks": {
    "BenchmarkFast": {"ns_per_op": 1000, "bytes_per_op": 0, "allocs_per_op": 0},
    "BenchmarkSlow": {"ns_per_op": 2000, "bytes_per_op": 64, "allocs_per_op": 2, "note": "ignored"},
    "BenchmarkGone": {"ns_per_op": 10, "bytes_per_op": 0, "allocs_per_op": 0}
  }
}`

const benchText = `goos: linux
goarch: amd64
BenchmarkFast-8            1000       1100 ns/op          0 B/op          0 allocs/op
BenchmarkSlow-8             500       2100 ns/op         64 B/op          2 allocs/op
BenchmarkNew/case=1-8       100        500 ns/op          0 B/op          0 allocs/op
PASS
ok      vtmig   1.234s
`

// write puts content in a temp file and returns its path.
func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseJSONSnapshot(t *testing.T) {
	b, err := parseJSON([]byte(oldJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(b))
	}
	if b["BenchmarkSlow"].NsPerOp != 2000 || b["BenchmarkSlow"].AllocsPerOp != 2 {
		t.Fatalf("BenchmarkSlow parsed as %+v", b["BenchmarkSlow"])
	}
}

func TestParseBenchText(t *testing.T) {
	b := parseBenchText([]byte(benchText))
	if len(b) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(b), b)
	}
	if b["BenchmarkFast"].NsPerOp != 1100 {
		t.Fatalf("BenchmarkFast ns/op %g, want 1100 (suffix not stripped?)", b["BenchmarkFast"].NsPerOp)
	}
	if _, ok := b["BenchmarkNew/case=1"]; !ok {
		t.Fatalf("sub-benchmark name not normalized: %+v", b)
	}
	if b["BenchmarkSlow"].AllocsPerOp != 2 || b["BenchmarkSlow"].BytesPerOp != 64 {
		t.Fatalf("BenchmarkSlow parsed as %+v", b["BenchmarkSlow"])
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	oldPath := write(t, "old.json", oldJSON)
	newPath := write(t, "new.txt", benchText)
	var sb strings.Builder
	// Fast: +10%, Slow: +5%, both within 15%; allocs equal.
	if err := run([]string{oldPath, newPath}, &sb); err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "2 compared, 0 regression(s)") {
		t.Fatalf("unexpected report:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "unmatched (old only): BenchmarkGone") {
		t.Fatalf("missing unmatched listing:\n%s", sb.String())
	}
}

func TestCompareNsRegressionFails(t *testing.T) {
	oldPath := write(t, "old.json", oldJSON)
	newPath := write(t, "new.txt", benchText)
	var sb strings.Builder
	// 10% growth on BenchmarkFast exceeds a 5% threshold.
	err := run([]string{"-threshold", "0.05", oldPath, newPath}, &sb)
	var reg errRegression
	if !errors.As(err, &reg) {
		t.Fatalf("want regression error, got %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION: ns/op") {
		t.Fatalf("report does not flag the ns/op regression:\n%s", sb.String())
	}
}

func TestCompareAllocRegressionFails(t *testing.T) {
	oldPath := write(t, "old.json", oldJSON)
	newPath := write(t, "new.json", `{"benchmarks": {
		"BenchmarkFast": {"ns_per_op": 900, "bytes_per_op": 16, "allocs_per_op": 1}
	}}`)
	var sb strings.Builder
	err := run([]string{oldPath, newPath}, &sb)
	var reg errRegression
	if !errors.As(err, &reg) {
		t.Fatalf("want regression error, got %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "allocs/op 0 -> 1") {
		t.Fatalf("report does not flag the allocation increase:\n%s", sb.String())
	}
}

func TestCompareFasterIsNotRegression(t *testing.T) {
	oldPath := write(t, "old.json", oldJSON)
	newPath := write(t, "new.json", `{"benchmarks": {
		"BenchmarkSlow": {"ns_per_op": 100, "bytes_per_op": 64, "allocs_per_op": 2}
	}}`)
	var sb strings.Builder
	if err := run([]string{oldPath, newPath}, &sb); err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "faster") {
		t.Fatalf("speedup not reported:\n%s", sb.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"only-one"}, &sb); err == nil {
		t.Fatal("single argument accepted")
	}
	if err := run([]string{"-threshold", "-1", "a", "b"}, &sb); err == nil {
		t.Fatal("negative threshold accepted")
	}
	garbage := write(t, "g.txt", "not a benchmark file")
	good := write(t, "ok.json", oldJSON)
	if err := run([]string{garbage, good}, &sb); err == nil {
		t.Fatal("garbage input accepted")
	}
}

func TestRealSnapshotsCompare(t *testing.T) {
	// The checked-in snapshots must parse and compare cleanly (the PR 2 →
	// PR 3 comparison is the advisory CI gate's baseline).
	for _, f := range []string{"BENCH_seed.json", "BENCH_pr1.json", "BENCH_pr2.json"} {
		path := filepath.Join("..", "..", f)
		if _, err := os.Stat(path); err != nil {
			t.Skipf("snapshot %s not present: %v", f, err)
		}
		if _, err := parseFile(path); err != nil {
			t.Fatalf("parsing %s: %v", f, err)
		}
	}
}
