// Command benchdiff compares two benchmark recordings and exits non-zero
// when the newer one regresses: more than a threshold fraction slower in
// ns/op (default 15 %), or any increase in allocs/op.
//
// Usage:
//
//	benchdiff [-threshold 0.15] OLD NEW
//
// Each argument is either a BENCH_*.json recording (the repository's
// benchmark snapshot format: a top-level "benchmarks" object mapping
// benchmark names to {ns_per_op, bytes_per_op, allocs_per_op}) or the raw
// text output of `go test -bench -benchmem` (benchmark lines are parsed,
// everything else ignored; the trailing -GOMAXPROCS suffix is stripped so
// names match the snapshots). Only benchmarks present in both inputs are
// compared; the rest are listed as unmatched.
//
// The Makefile wires this up as `make bench-compare`, which measures a
// fresh short pass of the hot-path benchmarks and diffs it against the
// latest snapshot; CI runs that target as an advisory job.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// errRegression marks a detected performance regression (as opposed to a
// usage or parse error).
type errRegression struct{ count int }

func (e errRegression) Error() string {
	return fmt.Sprintf("%d benchmark regression(s)", e.count)
}

// bench is one benchmark's recorded figures.
type bench struct {
	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
}

// run executes the comparison and returns an error on usage problems or
// regressions.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.15, "maximum tolerated ns/op growth as a fraction (0.15 = +15%)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: benchdiff [-threshold 0.15] OLD NEW")
	}
	if *threshold < 0 {
		return fmt.Errorf("threshold must be non-negative, got %g", *threshold)
	}
	oldB, err := parseFile(fs.Arg(0))
	if err != nil {
		return err
	}
	newB, err := parseFile(fs.Arg(1))
	if err != nil {
		return err
	}
	regressions := compare(oldB, newB, *threshold, out)
	if regressions > 0 {
		return errRegression{count: regressions}
	}
	return nil
}

// parseFile loads one recording, auto-detecting the format.
func parseFile(path string) (map[string]bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if b, err := parseJSON(data); err == nil {
		return b, nil
	}
	b := parseBenchText(data)
	if len(b) == 0 {
		return nil, fmt.Errorf("%s: neither a BENCH_*.json snapshot nor go-bench output", path)
	}
	return b, nil
}

// parseJSON decodes the repository's BENCH_*.json snapshot format. Every
// value beyond the three figures (notes, comparison columns) is ignored.
func parseJSON(data []byte) (map[string]bench, error) {
	var doc struct {
		Benchmarks map[string]struct {
			NsPerOp     float64 `json:"ns_per_op"`
			BytesPerOp  float64 `json:"bytes_per_op"`
			AllocsPerOp float64 `json:"allocs_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmarks object")
	}
	out := make(map[string]bench, len(doc.Benchmarks))
	for name, b := range doc.Benchmarks {
		out[name] = bench{NsPerOp: b.NsPerOp, BytesPerOp: b.BytesPerOp, AllocsPerOp: b.AllocsPerOp}
	}
	return out, nil
}

// gomaxprocsSuffix matches the -N tail go test appends to benchmark
// names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchText extracts benchmark lines from `go test -bench -benchmem`
// output:
//
//	BenchmarkName-8   100   22242511 ns/op   376704 B/op   221 allocs/op
//
// Lines without an ns/op figure are skipped.
func parseBenchText(data []byte) map[string]bench {
	out := make(map[string]bench)
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		b := bench{NsPerOp: -1}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		if b.NsPerOp < 0 {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		out[name] = b
	}
	return out
}

// compare prints a per-benchmark table and returns the number of
// regressions: >threshold ns/op growth or any allocs/op increase.
func compare(oldB, newB map[string]bench, threshold float64, out io.Writer) int {
	names := make([]string, 0, len(oldB))
	for name := range oldB {
		if _, ok := newB[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	regressions := 0
	fmt.Fprintf(out, "%-50s %14s %14s %8s %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "verdict")
	for _, name := range names {
		o, n := oldB[name], newB[name]
		delta := 0.0
		if o.NsPerOp > 0 {
			delta = n.NsPerOp/o.NsPerOp - 1
		}
		verdict := "ok"
		switch {
		case n.AllocsPerOp > o.AllocsPerOp:
			verdict = fmt.Sprintf("REGRESSION: allocs/op %g -> %g", o.AllocsPerOp, n.AllocsPerOp)
			regressions++
		case delta > threshold:
			verdict = "REGRESSION: ns/op"
			regressions++
		case delta < -threshold:
			verdict = "faster"
		}
		fmt.Fprintf(out, "%-50s %14.0f %14.0f %+7.1f%% %s\n", name, o.NsPerOp, n.NsPerOp, delta*100, verdict)
	}

	unmatched := func(label string, a, b map[string]bench) {
		var miss []string
		for name := range a {
			if _, ok := b[name]; !ok {
				miss = append(miss, name)
			}
		}
		sort.Strings(miss)
		for _, name := range miss {
			fmt.Fprintf(out, "unmatched (%s only): %s\n", label, name)
		}
	}
	unmatched("old", oldB, newB)
	unmatched("new", newB, oldB)

	fmt.Fprintf(out, "%d compared, %d regression(s), threshold +%.0f%% ns/op, allocs/op must not grow\n",
		len(names), regressions, threshold*100)
	return regressions
}
