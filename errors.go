package vtmig

import "fmt"

// UnknownBaselineError reports an unrecognized baseline name passed to
// RunBaseline.
type UnknownBaselineError struct {
	// Name is the rejected baseline name.
	Name string
}

// Error implements error.
func (e *UnknownBaselineError) Error() string {
	return fmt.Sprintf("vtmig: unknown baseline %q (want random, greedy, oracle, qlearning, or identification)", e.Name)
}

// errUnknownBaseline builds the typed error.
func errUnknownBaseline(name string) error {
	return &UnknownBaselineError{Name: name}
}
